"""The shard worker — one OS process owning a set of partitions.

A worker is the process-parallel counterpart of a
:class:`~repro.engine.processor.ProcessorUnit`: it runs the batched
consume→process loop (``WorkBatch`` in, ``BatchDone`` out) over its own
:class:`~repro.engine.task.TaskProcessor` per owned partition. It holds
no connection to the message bus — the coordinator side (the
``ParallelCluster`` dispatcher, or each sharded frontend process) polls
the log on its behalf and ships contiguous offset runs across a pipe or
data socket — so the whole data path of a worker is: decode batch,
``process_batch``, encode replies.

Workers are born empty. Catalogue state (streams, metrics, schema
evolutions) arrives as control messages; task state either accumulates
from work batches or arrives wholesale as a
:class:`~repro.shard.wire.RestoreTask` checkpoint frame. After a crash
the supervisor replays the control log into a fresh process, ships each
owned task's latest stored checkpoint, and the cluster replays only the
partition tail past the checkpointed offset with ``reply_from`` set to
the replied watermark — bounded-replay recovery that never duplicates a
client reply. On ``CheckpointRequest(with_state=True)`` the worker
snapshots every owned task and ships the frames back inside the ack,
omitting immutable files the supervisor advertised it already holds.
"""

from __future__ import annotations

import os
import socket
import traceback
from dataclasses import dataclass
from multiprocessing import connection
from multiprocessing.connection import Connection

from repro.engine.catalog import (
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    MetricDef,
)
from repro.engine.processor import UnitConfig
from repro.engine.task import BackfillState, TaskCheckpoint, TaskProcessor
from repro.messaging.log import TopicPartition
from repro.shard import columnar, wire
from repro.shard.shm import ShmError, ShmRing
from repro.telemetry import MetricsRegistry, encode_snapshot

#: Pre-encoded readiness ping for the shm transport; see shard.shm.
DOORBELL = wire.encode(wire.ShmDoorbell())

#: Minimum seconds between snapshot ships on BatchDone frames.
_STATS_SHIP_INTERVAL_S = 0.02


@dataclass
class _PendingSplice:
    """A metric waiting for its task to reach an exact offset cut.

    Two flavors share the mechanism. A *backfill install* carries the
    replayed ``state`` and acks with ``BackfillInstalled`` once spliced.
    An *activation* (``state is None``) registers a freshly created
    metric with zero state at the dispatch frontier the DDL was stamped
    with — used when a task is rebuilt from a checkpoint (or from
    scratch) that predates the metric, so the recovery replay below the
    cut cannot fold records the original incarnation processed without
    the metric.
    """

    at_offset: int
    metric: MetricDef
    state: BackfillState | None


class ShardWorker:
    """The in-process brain of one shard worker (testable without fork)."""

    def __init__(self, worker_id: str, config: UnitConfig | None = None) -> None:
        self.worker_id = worker_id
        self.config = config if config is not None else UnitConfig()
        self.catalog = Catalog()
        self.assigned: set[TopicPartition] = set()
        self.task_processors: dict[TopicPartition, TaskProcessor] = {}
        #: last checkpoint taken per task, so the next one can release
        #: the LSM files the previous snapshot pinned.
        self._last_checkpoints: dict[TopicPartition, TaskCheckpoint] = {}
        #: splices waiting for their task to reach the cut offset,
        #: keyed ``tp -> metric_id``; applied mid-batch when a cut
        #: lands inside a run.
        self._pending_splices: dict[
            TopicPartition, dict[int, _PendingSplice]
        ] = {}
        #: activation cut per ``(tp, metric_id)`` from ``CreateMetric``
        #: frames: the dispatch frontier when the DDL landed. Consulted
        #: whenever a task is (re)built so replayed records below the
        #: cut never reach a metric created after them. Never pruned on
        #: revoke — a task handed back later still needs its history.
        self._activations: dict[tuple[TopicPartition, int], int] = {}
        #: frames to push to the supervisor outside the request/reply
        #: rhythm (backfill acks); the main loop flushes after each pass.
        self.outbox: list[object] = []
        self.messages_processed = 0
        #: This process's metric registry; its snapshot piggybacks on
        #: BatchDone frames so the dispatcher side always holds a fresh
        #: copy (observation only — never influences replies).
        self.telemetry = MetricsRegistry(f"worker:{worker_id}")
        #: Monotonic stamp of the last snapshot shipped: encoding one is
        #: the telemetry plane's single hot-path cost, so it rides at
        #: most every ``_STATS_SHIP_INTERVAL_S`` (first batch always).
        self._stats_shipped_at: float | None = None

    # -- control plane --------------------------------------------------------

    def handle_control(self, msg: object) -> None:
        """Apply one control message to the local catalogue and tasks."""
        if isinstance(msg, wire.CreateStream):
            self.catalog.apply(CreateStreamOp(msg.stream))
        elif isinstance(msg, wire.CreateMetric):
            self.catalog.apply(CreateMetricOp(msg.metric, msg.activations))
            for tp, at_offset in msg.activations:
                self._activations[(tp, msg.metric.metric_id)] = at_offset
            for tp, processor in self.task_processors.items():
                if tp.topic == msg.metric.topic:
                    processor.add_metric(msg.metric)
        elif isinstance(msg, wire.DeleteMetric):
            self.catalog.apply(DeleteMetricOp(msg.metric_id))
            for processor in self.task_processors.values():
                processor.remove_metric(msg.metric_id)
            for pending in self._pending_splices.values():
                pending.pop(msg.metric_id, None)
            for key in [k for k in self._activations if k[1] == msg.metric_id]:
                del self._activations[key]
        elif isinstance(msg, wire.AddPartitioner):
            self.catalog.apply(AddPartitionerOp(msg.stream, msg.partitioner))
        elif isinstance(msg, wire.EvolveSchema):
            self.catalog.apply(EvolveSchemaOp(msg.stream, msg.new_fields))
            stream = self.catalog.streams[msg.stream]
            for processor in self.task_processors.values():
                if processor.stream_name == msg.stream:
                    processor.evolve_schema(stream)
        elif isinstance(msg, wire.AssignPartitions):
            self.assigned = set(msg.partitions)
            # Revoked tasks are dropped: the sticky strategy keeps
            # tasks on their worker, so a revoke means another worker
            # now owns the task and rebuilds it from the shipped
            # checkpoint (plus the replayed tail when one exists).
            for tp in list(self.task_processors):
                if tp not in self.assigned:
                    del self.task_processors[tp]
                    self._last_checkpoints.pop(tp, None)
            for tp in list(self._pending_splices):
                if tp not in self.assigned:
                    del self._pending_splices[tp]
        elif isinstance(msg, wire.BackfillInstall):
            self.handle_backfill_install(msg)
        else:
            raise TypeError(f"unexpected control message: {type(msg).__name__}")

    # -- backfill splice -------------------------------------------------------

    def handle_backfill_install(self, msg: wire.BackfillInstall) -> int | None:
        """Stash a backfill install until the task reaches its cut.

        Deliberately does *not* register the metric in the worker
        catalogue: a crash between the stash and the completion
        broadcast must rebuild the task without the metric (its state
        is not in any stored checkpoint yet), and the coordinator's
        reset re-sends a fresh install for the restored offset.

        Returns the task's frontier when the install is already stale
        (its cut sits behind ``next_offset`` — possible when the sender
        restored from a snapshot that lags this worker, e.g. right
        after a frontend respawn) so data-plane callers can nack it;
        ``None`` otherwise.
        """
        if msg.tp not in self.assigned:
            return None  # raced a rebalance; the new owner gets its own install
        processor = self._processor_for(msg.tp)
        if processor.has_metric(msg.metric.metric_id):
            # Already spliced (a duplicate install after a coordinator
            # reset): determinism makes the existing state identical to
            # what this install would produce — just re-ack.
            self.outbox.append(
                wire.BackfillInstalled(msg.tp, msg.metric.metric_id)
            )
            return None
        if processor.next_offset > msg.at_offset:
            pending = self._pending_splices.get(msg.tp)
            if pending is not None:
                pending.pop(msg.metric.metric_id, None)
            return processor.next_offset
        self._pending_splices.setdefault(msg.tp, {})[
            msg.metric.metric_id
        ] = _PendingSplice(
            at_offset=msg.at_offset,
            metric=msg.metric,
            state=BackfillState(
                metric_id=msg.metric.metric_id,
                state_rows=msg.state_rows,
                distinct_rows=msg.distinct_rows,
                iterator_positions=msg.iterator_positions,
            ),
        )
        self._apply_ready_splices(msg.tp, processor)
        return None

    def _stash_activation(
        self, tp: TopicPartition, metric: MetricDef, at_offset: int
    ) -> None:
        """Queue a zero-state splice registering ``metric`` at its cut."""
        self._pending_splices.setdefault(tp, {})[
            metric.metric_id
        ] = _PendingSplice(at_offset=at_offset, metric=metric, state=None)

    def _apply_ready_splices(
        self, tp: TopicPartition, processor: TaskProcessor
    ) -> int:
        """Apply every stashed splice whose cut the task sits exactly at.

        Returns the number of splices resolved (applied or retired).
        Stale *installs* — the task progressed past the cut before the
        frame landed, possible when work arrives on a channel the
        control pipe is not ordered against — are dropped without
        acking; the coordinator notices the frontier moved and
        re-exports at a later cut. Stale *activations* cannot occur
        (partition offsets are dense and the cut is stashed before any
        replay), but if one ever did, registering immediately keeps the
        metric live rather than silently lost.
        """
        pending = self._pending_splices.get(tp)
        if not pending:
            return 0
        resolved = 0
        for metric_id, splice in list(pending.items()):
            if processor.next_offset == splice.at_offset:
                del pending[metric_id]
                resolved += 1
                if splice.state is None:
                    processor.add_metric(splice.metric)
                else:
                    processor.apply_backfill(splice.metric, splice.state)
                    self.outbox.append(
                        wire.BackfillInstalled(tp, metric_id)
                    )
            elif processor.next_offset > splice.at_offset:
                del pending[metric_id]
                resolved += 1
                if splice.state is None:
                    processor.add_metric(splice.metric)
        if not pending:
            self._pending_splices.pop(tp, None)
        return resolved

    # -- data plane -----------------------------------------------------------

    def handle_work(self, batch: wire.WorkBatch) -> wire.BatchDone:
        """Process one contiguous offset run; build the reply frame.

        A pending splice whose cut offset lands inside the run splits
        it: records below the cut are processed, the splice applies at
        exactly the cut, then the rest of the run proceeds with the
        metric live. Several pending cuts (a backfill install plus
        recovery activations, say) split the run repeatedly, lowest cut
        first.
        """
        telemetry = self.telemetry
        measured = telemetry.enabled
        hops: list[tuple[str, float]] = []
        span_id = batch.trace[0] if batch.trace is not None else ""
        started = telemetry.now() if measured else 0.0
        if measured and batch.trace is not None:
            # The dispatcher stamped its send time in source-seconds on
            # the system-wide monotonic clock; the delta is how long the
            # frame sat in the pipe/ring plus the worker's loop latency.
            for stage, stamp in batch.trace[1]:
                if stage == "sent_ms":
                    wait_ms = max(0.0, started * 1000.0 - stamp)
                    telemetry.observe_ms("worker_queue_wait_ms", wait_ms)
                    hops.append(("worker_queue_wait_ms", wait_ms))
        processor = self._processor_for(batch.tp)
        self._apply_ready_splices(batch.tp, processor)
        answers: list = []
        remaining = batch.records
        while remaining:
            pending = self._pending_splices.get(batch.tp)
            cuts = (
                [
                    s.at_offset
                    for s in pending.values()
                    if s.at_offset <= remaining[-1][0]
                ]
                if pending
                else []
            )
            if not cuts:
                answers += processor.process_batch(remaining)
                break
            cut = min(cuts)
            below = [r for r in remaining if r[0] < cut]
            if below:
                answers += processor.process_batch(below)
            resolved = self._apply_ready_splices(batch.tp, processor)
            remaining = [r for r in remaining if r[0] >= cut]
            if not below and not resolved:
                # The cut is unreachable within this run (it sits in an
                # offset gap the log never minted): process the rest —
                # the splice resolves as stale once the task passes it.
                answers += processor.process_batch(remaining)
                break
        self.messages_processed += len(batch.records)
        if measured:
            process_ms = (telemetry.now() - started) * 1000.0
            telemetry.observe_ms("worker_process_batch_ms", process_ms)
            hops.append(("worker_process_batch_ms", process_ms))
            merge_started = telemetry.now()
        reply_from = batch.reply_from
        replies = [
            (offset, answer)
            for (offset, _), answer in zip(batch.records, answers)
            if offset >= reply_from
        ]
        telemetry.counter_add("worker_batches_total")
        telemetry.counter_add("worker_records_total", len(batch.records))
        telemetry.counter_add("worker_replies_total", len(replies))
        done = wire.BatchDone(
            tp=batch.tp,
            next_offset=processor.next_offset,
            processed=len(batch.records),
            replies=replies,
        )
        if measured:
            merge_ms = (telemetry.now() - merge_started) * 1000.0
            telemetry.observe_ms("worker_reply_merge_ms", merge_ms)
            hops.append(("worker_reply_merge_ms", merge_ms))
            done.trace = (span_id, tuple(hops))
            shipped = self._stats_shipped_at
            if shipped is None or started - shipped >= _STATS_SHIP_INTERVAL_S:
                done.stats = encode_snapshot(telemetry.snapshot())
                self._stats_shipped_at = started
        return done

    def checkpoint_offsets(self) -> dict[TopicPartition, int]:
        """Consumed offsets per owned task (message-boundary consistent)."""
        return {
            tp: processor.next_offset
            for tp, processor in sorted(
                self.task_processors.items(), key=lambda item: str(item[0])
            )
        }

    # -- checkpoint shipping ---------------------------------------------------

    def build_checkpoints(
        self, known_files: dict[TopicPartition, frozenset[str]] | None = None
    ) -> list[wire.TaskCheckpointFrame]:
        """Snapshot every owned task as (delta) checkpoint frames.

        ``known_files`` lists immutable files the receiver already holds
        per task; their contents are never read or copied (sealed
        reservoir segments and LSM tables never change, so the name is
        enough for the receiver to reuse its copy) — a steady-state
        snapshot costs O(new state). The previous LSM checkpoint of
        each task is released so a long-running worker does not pin
        every historical table file.
        """
        known = known_files or {}
        frames: list[wire.TaskCheckpointFrame] = []
        for tp, processor in sorted(
            self.task_processors.items(), key=lambda item: str(item[0])
        ):
            checkpoint = processor.checkpoint(
                exclude_files=set(known.get(tp, ()))
            )
            previous = self._last_checkpoints.get(tp)
            if previous is not None:
                processor.state.db.release_checkpoint(previous.state_checkpoint)
            self._last_checkpoints[tp] = checkpoint
            frames.append(wire.TaskCheckpointFrame(checkpoint))
        return frames

    def restore_task(self, frame: wire.TaskCheckpointFrame) -> None:
        """Seed a task processor from a (fully materialized) checkpoint.

        The frame must arrive after the control log, so the catalogue
        already knows the stream and metrics; replay of the partition
        tail past ``frame.offset`` then brings the task up to date.

        A catalogue metric *absent* from the checkpoint whose activation
        cut lies past the checkpointed offset was created mid-stream
        after this snapshot: the original incarnation processed the tail
        below the cut without it, so registering it now would fold those
        replayed records in and diverge from the reference. It is
        deferred as a zero-state splice at exactly the cut instead.
        (Control-pipe FIFO guarantees any checkpoint taken after the DDL
        contains the metric, so absence implies the cut is ahead.)
        """
        tp = frame.tp
        stream = self.catalog.stream_of_topic(tp.topic)
        if stream is None:
            raise KeyError(
                f"worker {self.worker_id} got a checkpoint for unknown "
                f"topic {tp.topic!r}"
            )
        checkpoint = frame.checkpoint
        live: list[MetricDef] = []
        deferred: list[tuple[MetricDef, int]] = []
        for metric in self.catalog.metrics_for_topic(tp.topic):
            activation = self._activations.get((tp, metric.metric_id), 0)
            if (
                metric.metric_id not in checkpoint.metric_ids
                and activation > checkpoint.offset
            ):
                deferred.append((metric, activation))
            else:
                live.append(metric)
        processor = TaskProcessor.restore(
            checkpoint,
            stream,
            live,
            reservoir_config=self.config.reservoir,
            lsm_config=self.config.lsm,
        )
        if self.telemetry.enabled:
            processor.telemetry = self.telemetry
        self.task_processors[tp] = processor
        for metric, activation in deferred:
            self._stash_activation(tp, metric, activation)
        self._apply_ready_splices(tp, processor)

    def _processor_for(self, tp: TopicPartition) -> TaskProcessor:
        processor = self.task_processors.get(tp)
        if processor is not None:
            return processor
        stream = self.catalog.stream_of_topic(tp.topic)
        if stream is None:
            raise KeyError(
                f"worker {self.worker_id} got work for unknown topic {tp.topic!r}"
            )
        # Built-from-scratch tasks start at offset 0 and replay the full
        # log, so mid-stream metrics defer to their activation cut just
        # like the restore path above.
        live = []
        deferred = []
        for metric in self.catalog.metrics_for_topic(tp.topic):
            activation = self._activations.get((tp, metric.metric_id), 0)
            if activation > 0:
                deferred.append((metric, activation))
            else:
                live.append(metric)
        processor = TaskProcessor.build(
            tp,
            stream,
            live,
            reservoir_config=self.config.reservoir,
            lsm_config=self.config.lsm,
        )
        if self.telemetry.enabled:
            processor.telemetry = self.telemetry
        self.task_processors[tp] = processor
        for metric, activation in deferred:
            self._stash_activation(tp, metric, activation)
        return processor


def _bind_listener(addr: str) -> socket.socket:
    """Bind the worker's data-socket listener (AF_UNIX, stream).

    A restarted worker rebinds the *same* address — frontends reconnect
    to it after the supervisor announces the restart — so a stale socket
    file from the previous incarnation is unlinked first.
    """
    if os.path.exists(addr):
        os.unlink(addr)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(addr)
    sock.listen(16)
    return sock


def _handle_one(
    worker: ShardWorker, conn: Connection, msg: object
) -> bool:
    """Dispatch one frame; replies go back on the conn it arrived on.

    Returns False when the worker should exit (graceful shutdown).
    """
    if isinstance(msg, wire.WorkBatch):
        conn.send_bytes(wire.encode(worker.handle_work(msg)))
    elif isinstance(msg, wire.CheckpointRequest):
        frames = (
            worker.build_checkpoints(msg.known_files_map())
            if msg.with_state
            else []
        )
        conn.send_bytes(
            wire.encode(
                wire.CheckpointAck(
                    msg.request_id, worker.checkpoint_offsets(), frames
                )
            )
        )
    elif isinstance(msg, wire.RestoreTask):
        worker.restore_task(msg.frame)
    elif isinstance(msg, wire.Shutdown):
        return False
    elif isinstance(msg, wire.Crash):
        os._exit(17)  # fault injection: die without cleanup
    elif isinstance(msg, wire.ShmDoorbell):
        pass  # pure wakeup; the main loop drains the rings
    else:
        worker.handle_control(msg)
    return True


def _drain_data_ring(
    worker: ShardWorker,
    data_conn: Connection,
    rings: tuple[ShmRing, ShmRing],
) -> bool:
    """Drain one frontend link's work ring; False when the link is dead.

    Mirrors the socket loop's error discipline: only ring/socket I/O
    counts as "the frontend went away" — ``handle_work`` exceptions
    (reservoir/LSM I/O) propagate to the ``WorkerError`` reporter.
    """
    work, reply = rings
    replied = False
    while True:
        try:
            payload = work.try_recv()
        except ShmError:
            return False
        if payload is None:
            break
        # A control frame (e.g. a backfill install) the frontend wrote
        # to the socket before publishing this ring frame must apply
        # first — the socket write completed before the publish, so it
        # is already readable here. Without this re-poll a splice cut
        # could be overtaken by the batches above it.
        try:
            while data_conn.poll(0):
                msg = wire.decode(data_conn.recv_bytes())
                if isinstance(msg, wire.BackfillInstall):
                    stale = worker.handle_backfill_install(msg)
                    if stale is not None:
                        data_conn.send_bytes(wire.encode(
                            wire.BackfillStale(
                                msg.tp, msg.metric.metric_id, stale
                            )
                        ))
                elif not isinstance(msg, wire.ShmDoorbell):
                    worker.handle_control(msg)
        except (EOFError, OSError):
            return False
        done = columnar.encode(worker.handle_work(columnar.decode(payload)))
        try:
            reply.send(done)
        except (OSError, ShmError):
            return False
        replied = True
    if replied:
        try:
            data_conn.send_bytes(DOORBELL)
        except OSError:
            return False
    return True


def shard_worker_main(
    conn: Connection,
    worker_id: str,
    config: UnitConfig | None = None,
    listen_addr: str | None = None,
    shm_names: tuple[str, str] | None = None,
) -> None:
    """Worker process entrypoint: decode → dispatch → reply, until told to stop.

    The supervisor's duplex pipe (``conn``) is the control channel:
    DDL replay, assignment, checkpoint requests, restore frames,
    shutdown. With ``listen_addr`` set (sharded-frontend mode) the
    worker additionally listens on an AF_UNIX socket where frontend
    processes connect their data channels; ``WorkBatch`` frames then
    arrive on those sockets and each ``BatchDone`` is answered on the
    socket its batch came from. Whenever both channels are readable the
    control channel is drained *completely first* — that ordering is
    what guarantees a restarted worker applies its replayed control log
    and ``RestoreTask`` checkpoints before any replayed work batch, and
    a rebalanced task's checkpoint lands before its new traffic.

    With ``shm_names`` set (``transport="shm"``) the supervisor's work
    batches instead arrive columnar-packed through a shared-memory ring
    attached at ``shm_names[0]`` and replies return through the ring at
    ``shm_names[1]``; the pipe carries only control frames and
    doorbells. Frontend links upgrade the same way per connection via a
    ``ShmHello`` on their data socket. The cross-channel ordering
    guarantee holds because a ring frame is published strictly after
    any control frame that precedes it was written to the pipe, and the
    ring drain re-polls the pipe before processing each frame.

    Any exception is reported as a :class:`~repro.shard.wire.WorkerError`
    frame on the control channel before the process exits non-zero, so
    the supervisor can log the cause instead of just observing a dead
    pipe.
    """
    worker = ShardWorker(worker_id, config)
    listener = _bind_listener(listen_addr) if listen_addr is not None else None
    data_conns: list[Connection] = []
    sup_work = sup_reply = None
    if shm_names is not None:
        sup_work = ShmRing.attach(shm_names[0], "consumer")
        sup_reply = ShmRing.attach(shm_names[1], "producer")
    #: per-frontend-link ring pair ``(work, reply)``, announced by
    #: ``ShmHello`` on that link's data socket.
    data_rings: dict[Connection, tuple[ShmRing, ShmRing]] = {}

    def all_rings() -> list[ShmRing]:
        rings = [] if sup_work is None else [sup_work, sup_reply]
        for pair in data_rings.values():
            rings.extend(pair)
        return rings

    def drop_data_conn(data_conn: Connection, *, unlink: bool) -> None:
        data_conns.remove(data_conn)
        data_conn.close()
        for ring in data_rings.pop(data_conn, ()):
            ring.close(unlink=unlink)

    parent_pid = os.getppid()
    try:
        while True:
            wait_on: list = [conn, *data_conns]
            if listener is not None:
                wait_on.append(listener)
            # With rings attached the wait must time out so heartbeats
            # keep advancing even on an idle link; without, it times out
            # anyway so the orphan check below runs on an idle worker.
            timeout = 0.5 if (sup_work is not None or data_rings) else 1.0
            ready = set(connection.wait(wait_on, timeout))
            if os.getppid() != parent_pid:
                # The owning process was killed without cleanup. Pipe
                # EOF cannot signal this: forked siblings inherit each
                # other's pipe ends and keep them open, so reparenting
                # is the only reliable death signal.
                return
            for ring in all_rings():
                ring.beat()
            if conn in ready:
                # Drain the control channel fully before touching data.
                while True:
                    if not _handle_one(worker, conn, wire.decode(conn.recv_bytes())):
                        return
                    if not conn.poll(0):
                        break
            if sup_work is not None:
                replied = False
                while True:
                    payload = sup_work.try_recv()
                    if payload is None:
                        break
                    # A visible ring frame was published strictly after
                    # any control frame sent before it, so that control
                    # frame is already readable — apply it first
                    # (restore-before-work across the two channels).
                    while conn.poll(0):
                        if not _handle_one(
                            worker, conn, wire.decode(conn.recv_bytes())
                        ):
                            return
                    batch = columnar.decode(payload)
                    sup_reply.send(columnar.encode(worker.handle_work(batch)))
                    replied = True
                if replied:
                    conn.send_bytes(DOORBELL)
            if listener is not None and listener in ready:
                accepted, _ = listener.accept()
                data_conns.append(Connection(accepted.detach()))
            for data_conn in [c for c in data_conns if c in ready]:
                # Only the socket reads/writes may be treated as "the
                # frontend went away" — an OSError raised by batch
                # processing itself (reservoir/LSM I/O) must propagate
                # to the WorkerError reporter below, not silently close
                # a healthy frontend's link.
                while True:
                    try:
                        payload = data_conn.recv_bytes()
                    except (EOFError, OSError):
                        # A SIGKILLed frontend cannot unlink its rings;
                        # this worker is the last process holding them.
                        drop_data_conn(data_conn, unlink=True)
                        break
                    msg = wire.decode(payload)
                    if isinstance(msg, wire.WorkBatch):
                        frame = wire.encode(worker.handle_work(msg))
                        try:
                            data_conn.send_bytes(frame)
                        except OSError:
                            drop_data_conn(data_conn, unlink=True)
                            break
                    elif isinstance(msg, wire.ShmHello):
                        data_rings[data_conn] = (
                            ShmRing.attach(msg.work_ring, "consumer"),
                            ShmRing.attach(msg.reply_ring, "producer"),
                        )
                    elif isinstance(msg, wire.BackfillInstall):
                        stale = worker.handle_backfill_install(msg)
                        if stale is not None:
                            # Cut already passed (the frontend restored
                            # from a snapshot behind this task): nack on
                            # the data link so it re-splices higher.
                            try:
                                data_conn.send_bytes(wire.encode(
                                    wire.BackfillStale(
                                        msg.tp, msg.metric.metric_id, stale
                                    )
                                ))
                            except OSError:
                                drop_data_conn(data_conn, unlink=True)
                                break
                    elif not _handle_one(worker, data_conn, msg):
                        return
                    if not data_conn.poll(0):
                        break
            # Doorbells only wake the loop; every upgraded link's work
            # ring is drained each pass (cheap: a head==tail load when
            # idle), so a doorbell coalesced with the frame it announced
            # is never lost.
            for data_conn in list(data_conns):
                rings = data_rings.get(data_conn)
                if rings is not None and not _drain_data_ring(
                    worker, data_conn, rings
                ):
                    drop_data_conn(data_conn, unlink=True)
            # Push unsolicited frames (backfill acks) to the supervisor
            # at the end of each pass, whatever channel produced them.
            while worker.outbox:
                frame = wire.encode(worker.outbox[0])
                try:
                    conn.send_bytes(frame)
                except OSError:
                    break  # supervisor gone; orphan check will reap us
                worker.outbox.pop(0)
    except EOFError:
        return  # supervisor went away; nothing left to reply to
    except BaseException:
        try:
            conn.send_bytes(
                wire.encode(wire.WorkerError(traceback.format_exc(limit=8)))
            )
        except OSError:
            pass
        raise
    finally:
        # Attached rings are closed (not unlinked — their owners clean
        # up) so a blocked peer fails fast on the closed flag instead of
        # waiting out the staleness window.
        for ring in all_rings():
            ring.close()
