"""Sharded frontends: the coordinator itself, split across processes.

The process-parallel engine's first incarnation funneled every event
through one coordinator process — fan-out, wire framing and reply merge
capped throughput at roughly the coordinator's per-event cost no matter
how many shard workers ran. This module breaks that ceiling by sharding
the coordinator the same way the engine shards tasks:

- **N frontend processes** (:func:`shard_frontend_main`, brain in
  :class:`FrontendEngine`) each own a *sticky slice of the partition
  space* (assigned with the Figure 7 strategy, one frontend modelled as
  one node). A frontend hosts the partition logs for its slice, computes
  nothing but routing and framing, and ships ``WorkBatch`` frames
  *directly* to the owning shard workers over its own AF_UNIX data
  sockets — the hot path never crosses a shared coordinator loop.
- **A thin client facade** (:class:`ClusterRouter`) that keeps the
  ``RailgunCluster`` API: DDL calls, ``send``/``send_batch``, the same
  :class:`~repro.engine.cluster.Reply` objects. Its per-event work is
  hashing the partitioner key (the same ``partition_for`` the
  single-process bus uses, so placement is identical), framing the event
  to the owning frontend, and merging completed replies.

Determinism: a partition is owned by exactly one frontend and the
router routes in client order over FIFO channels, so every partition's
log order equals the single-process engine's — replies are
byte-identical to ``create_cluster("single")`` (enforced by
``tests/test_batch_equivalence.py``). Per-key ordering holds because a
key hashes to one partition, hence one frontend, hence one worker.

Reply fan-in moves with the data: each frontend matches ``BatchDone``
replies against its own ``(task, offset) → correlation`` map and ships
``(correlation, topic, results)`` triples; the router only counts each
correlation's distinct replied topics against the stream's fan-out —
a merge that is O(replies), not a dispatch loop.

Recovery:

- **Worker crash** — identical contract to ``ParallelCluster``: the
  supervisor restarts the worker, replays the control log and ships
  stored checkpoints; the router then announces ``WorkerRestarted`` to
  every frontend owning one of its tasks, and each frontend seeks those
  tasks back to the checkpointed offset and replays only the
  uncheckpointed tail, with ``reply_from`` (the replied watermark)
  suppressing every reply the client already saw.
- **Frontend crash** — journal-based: the router keeps each frontend's
  ordered control+ingest frame journal and its replied watermarks (they
  ride every ``ReplyBatch``). A respawned frontend gets
  ``RestoreWatermarks`` then the journal verbatim, rebuilding its
  partition logs with identical offsets; it re-dispatches only offsets
  at or past the watermark. Workers treat re-shipped offsets below
  their frontier as replays (state untouched, read-only replies), so
  in-flight requests complete and settled ones are never re-answered —
  at-least-once for the handful of replies that were in flight, with
  the read-only values reflecting post-crash state. The journal is
  in-memory and unbounded for now; checkpoint-aware truncation is a
  named ROADMAP item.

``stats()`` and the checkpoint cadence stay merged at the supervisor:
frontends report per-worker ``(records, replies)`` deltas inside every
``ReplyBatch`` and the router credits them via
:meth:`~repro.shard.supervisor.ShardSupervisor.note_processed`, so
``checkpoint_every`` fires on cluster-wide progress exactly as in
single-frontend mode.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import queue
import shutil
import socket
import tempfile
import threading
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.common.clock import ManualClock
from repro.common.errors import EngineError
from repro.common.hashing import partition_for
from repro.common.timesource import TimeSource, resolve_time_source
from repro.engine.assignment import (
    PreviousState,
    ProcessorInfo,
    StickyAssignmentStrategy,
)
from repro.engine.catalog import (
    GLOBAL_PARTITIONER,
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    topic_name,
)
from repro.engine.cluster import (
    Reply,
    _normalize_fields,
    build_metric_def,
    build_stream_def,
    validate_new_partitioner,
)
from repro.engine.envelope import EventEnvelope
from repro.engine.processor import ACTIVE_GROUP, UnitConfig
from repro.engine.task import TaskProcessor
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.consumer import PartitionView
from repro.messaging.durable import (
    DurableBus,
    read_cut,
    resolve_durable_dir,
    write_cut,
)
from repro.messaging.cursor import LogCursor
from repro.messaging.log import TopicPartition
from repro.replay.asof import AsOfResult, seed_processor
from repro.replay.backfill import ReplayError, ShadowReplay
from repro.shard import columnar, shm, wire
from repro.shard.shm import ShmError, ShmRing
from repro.shard.supervisor import ShardSupervisor, _default_context
from repro.telemetry import (
    MetricsRegistry,
    decode_bundle,
    decode_snapshot,
    encode_bundle,
    encode_snapshot,
    merge_snapshots,
)

#: reply entries per ReplyBatch frame (keeps frames under pipe buffers).
REPLY_CHUNK = 512

#: Pre-encoded readiness ping for the shm transport; see shard.shm.
DOORBELL = wire.encode(wire.ShmDoorbell())


def _connect(
    addr: str, deadline_s: float = 0.25, time_source: TimeSource | None = None
):
    """Connect a data socket to a worker's listener, with a short grace.

    A restarted worker rebinds its address asynchronously, so the first
    attempts may hit a missing socket file or a refused connection; the
    grace window covers that bind latency and nothing more. Returns
    ``None`` when the worker stays unreachable — the caller retries on
    a later dispatch round, so the frontend loop never stalls long
    enough to delay the router control traffic (e.g. the
    ``WorkerRestarted`` that would resolve the outage) or other
    workers' batches.
    """
    from multiprocessing.connection import Connection

    clock = resolve_time_source(time_source)
    deadline = clock.deadline(deadline_s)
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(addr)
            return Connection(sock.detach())
        except OSError:
            sock.close()
            if deadline.expired():
                return None
            clock.sleep(0.005)


class FrontendEngine:
    """The in-process brain of one frontend process (testable without fork).

    Owns the sticky partition slice installed by
    :class:`~repro.shard.wire.FrontendAssign`: a private
    :class:`~repro.messaging.broker.MessageBus` holding those
    partitions' logs, one :class:`~repro.messaging.consumer.PartitionView`
    over them, the ``(task, offset) → correlation`` pending map, and the
    per-task replied watermarks. Invariants:

    - **Single writer**: only this frontend appends to its partitions,
      in ingest order, so log offsets are dense and deterministic — a
      journal replay after a crash rebuilds byte-identical logs.
    - **Reply watermark**: ``watermarks[tp]`` is replied-up-to-here;
      dispatch passes it as ``reply_from`` so workers suppress replayed
      replies below it, and offsets below it never re-enter ``pending``.
    - **Credit flow control**: at most ``max_outstanding`` un-acked
      batches per worker keep socket traffic bounded (no cross-pipe
      deadlock), mirroring the supervisor's scheme.
    """

    def __init__(
        self,
        frontend_id: str,
        batch_max: int = 256,
        max_outstanding: int = 2,
        durable_dir: str | None = None,
        durable_fsync: str = "batch",
        durable_segment_bytes: int = 1 << 20,
        transport: str = "socket",
        shm_prefix: str | None = None,
        time_source: TimeSource | None = None,
        unit_config: UnitConfig | None = None,
    ) -> None:
        if transport not in ("socket", "shm"):
            raise EngineError(f"unknown transport {transport!r}")
        self._time = resolve_time_source(time_source)
        self.frontend_id = frontend_id
        self.batch_max = batch_max
        self.max_outstanding = max_outstanding
        self.transport = transport
        #: ring-name prefix; the router sweeps it on close as the
        #: backstop for rings a SIGKILLed frontend left behind.
        self._shm_prefix = (
            shm_prefix
            if shm_prefix is not None
            else f"rgshm-{uuid.uuid4().hex[:8]}"
        )
        self._link_seq = 0
        #: worker id -> (work ring we produce into, reply ring we
        #: consume from); this frontend owns both segments of a link.
        self.rings: dict[str, tuple[ShmRing, ShmRing]] = {}
        self.catalog = Catalog()
        self.durable_dir = durable_dir
        #: ingest frames durably applied behind the consistent cut; on a
        #: respawn this comes back from disk and makes the router's
        #: write-ahead journal replay idempotent (frames below it only
        #: advance the sequence counter — their appends are already in
        #: the reopened logs).
        self._durable_applied = 0
        #: sequence number the next IngestBatch will carry (implicit:
        #: the router sends ingest frames in order, exactly once each).
        self._ingest_seq = 0
        self._ingested_since_sync = 0
        self._durable_dirty = False
        if durable_dir is not None:
            self.bus = DurableBus(
                durable_dir,
                fsync=durable_fsync,
                segment_bytes=durable_segment_bytes,
            )
            self._durable_applied, ends = read_cut(durable_dir)
            self._ingest_seq = self._durable_applied
            for tp in self.bus.all_partitions():
                # Roll every log back to the cut: appends past it came
                # from frames the journal replay will re-deliver.
                log = self.bus.log(tp)
                log.truncate_to(max(ends.get(tp, 0), log.start_offset))
        else:
            self.bus = MessageBus()
        self.view = PartitionView(self.bus, ACTIVE_GROUP)
        #: task -> owning worker id (installed by FrontendAssign).
        self.routes: dict[TopicPartition, str] = {}
        #: worker id -> data-socket address.
        self.addrs: dict[str, str] = {}
        #: worker id -> live data connection.
        self.conns: dict[str, object] = {}
        #: workers whose link failed: a downed worker was (or is being)
        #: restarted with state only up to its checkpoint, so this
        #: frontend must not reconnect — and must not ship it any tail
        #: records — until the router's ``WorkerRestarted`` authorizes
        #: it with the matching seek-back. Reconnecting early would feed
        #: the fresh worker offsets without their history.
        self.down: set[str] = set()
        self.outstanding: dict[str, int] = {}
        #: replied watermark per task (replies below it already reached
        #: the client; replayed work must not repeat them).
        self.watermarks: dict[TopicPartition, int] = {}
        #: shipped-but-unreplied offsets, keyed by (task, offset).
        self.pending: dict[tuple[TopicPartition, int], int] = {}
        self.draining: int | None = None
        self.events_ingested = 0
        self.replies_collected = 0
        #: per-frontend registry; its snapshot (plus the latest worker
        #: snapshots absorbed from ``BatchDone`` frames) piggybacks on
        #: the last chunk of every shipping :meth:`flush`.
        self.telemetry = MetricsRegistry(
            f"frontend:{frontend_id}", time_source=self._time
        )
        self._worker_snapshots: dict[str, bytes] = {}
        #: last telemetry-bundle ship time; bundles ride at most every
        #: 20ms (encoding one is the flush path's only telemetry cost).
        self._stats_shipped_at: float | None = None
        #: span id of the most recent ingest frame; stamped onto
        #: outgoing ``WorkBatch`` frames so worker hop timings chain to
        #: the span the router minted.
        self._active_span: str | None = None
        self._reply_buf: list[tuple[int, str, dict | None]] = []
        self._processed_buf: dict[str, list[int]] = {}
        self._wm_dirty = False
        #: worker-identical processing config — the backfill shadows
        #: must chunk/dedup exactly like the workers they splice into.
        self.unit_config = unit_config if unit_config is not None else UnitConfig()
        #: metric id -> running backfill job (this frontend's half).
        self.backfills: dict[int, FrontendBackfill] = {}
        #: answered log-read pages awaiting the next flush.
        self._records_buf: list[wire.BackfillRecords] = []

    # -- control plane --------------------------------------------------------

    def handle(self, msg: object) -> None:
        """Apply one router frame (control or ingest)."""
        if isinstance(msg, wire.IngestBatch):
            self.ingest(msg)
        elif isinstance(msg, wire.FrontendAssign):
            self.apply_assign(msg)
        elif isinstance(msg, wire.RestoreWatermarks):
            self.restore_watermarks(msg)
        elif isinstance(msg, wire.WorkerRestarted):
            self.worker_restarted(msg)
        elif isinstance(msg, wire.DrainRequest):
            self.draining = msg.request_id
        elif isinstance(msg, wire.TruncateLogs):
            self.truncate_logs(msg)
        elif isinstance(msg, wire.CreateStream):
            self.catalog.apply(CreateStreamOp(msg.stream))
            self._create_topics(msg.stream.name)
        elif isinstance(msg, wire.AddPartitioner):
            self.catalog.apply(AddPartitionerOp(msg.stream, msg.partitioner))
            self._create_topics(msg.stream)
        elif isinstance(msg, wire.BackfillStart):
            if msg.metric.metric_id not in self.backfills:
                self.backfills[msg.metric.metric_id] = FrontendBackfill(self, msg)
        elif isinstance(msg, wire.BackfillStop):
            job = self.backfills.pop(msg.metric_id, None)
            if job is not None:
                job.close()
        elif isinstance(msg, wire.BackfillRead):
            self._records_buf.append(self._read_records(msg))
        else:
            raise TypeError(f"unexpected frontend message: {type(msg).__name__}")

    def _read_records(self, msg: wire.BackfillRead) -> wire.BackfillRecords:
        """Serve one page of an owned partition log (the router's as-of
        read path; the router holds no logs of its own)."""
        log = self.bus.log(msg.tp)
        start = getattr(log, "start_offset", 0)
        end = self.bus.end_offset(msg.tp)
        begin = max(msg.begin, start)
        entries: list[tuple[int, Event]] = []
        with LogCursor(self.bus, msg.tp, begin) as cursor:
            for message in cursor.read(msg.max_records):
                value = message.value
                if isinstance(value, EventEnvelope):
                    value = value.event
                entries.append((message.offset, value))
        return wire.BackfillRecords(msg.tp, msg.begin, entries, start, end)

    def step_backfills(self) -> int:
        """Advance every running backfill job one round."""
        work = 0
        for job in self.backfills.values():
            work += job.step()
        return work

    def _create_topics(self, stream_name: str) -> None:
        stream = self.catalog.streams[stream_name]
        for partitioner in stream.partitioners:
            count = 1 if partitioner == GLOBAL_PARTITIONER else stream.partitions
            self.bus.create_topic(topic_name(stream_name, partitioner), count)

    def apply_assign(self, msg: wire.FrontendAssign) -> None:
        """Install the owned slice + task→worker routes; apply seeks.

        Seeks rewind *moved* tasks to their checkpoint offset — never
        forward past the shipped frontier, so a task whose checkpoint
        ran ahead of this frontend's dispatch position (possible right
        after a frontend respawn) keeps every unreplied offset.
        """
        owned: list[TopicPartition] = []
        routes: dict[TopicPartition, str] = {}
        for tp, worker_id, addr in msg.routes:
            routes[tp] = worker_id
            self.addrs[worker_id] = addr
            owned.append(tp)
        moved = {
            tp for tp, worker_id in routes.items()
            if self.routes.get(tp) not in (None, worker_id)
        }
        self.routes = routes
        if moved:
            # A moved task's new worker restored from a checkpoint that
            # may predate an earlier splice: re-replay and re-install
            # (a duplicate install is re-acked without applying).
            for job in self.backfills.values():
                job.forget(moved)
        active = set(routes.values())
        for worker_id in list(self.conns):
            if worker_id not in active:
                # Planned route removal, not a failure: close without
                # quarantining, so a later rebalance that routes tasks
                # back to this (live) worker can simply redial it.
                self._close_conn(worker_id)
        self.view.set_assignment(owned)
        for tp, offset in msg.seeks:
            self.view.seek(tp, min(offset, self.view.position(tp)))

    def restore_watermarks(self, msg: wire.RestoreWatermarks) -> None:
        """Seed replied watermarks after a respawn (before journal replay).

        The view seeks straight to each watermark: offsets below it were
        already answered, so the journal replay only re-dispatches the
        unreplied tail (workers replay-skip anything their state already
        covers and answer read-only). Explicit ``seeks`` override the
        start downwards for tasks whose worker restarted and needs its
        tail re-shipped from the checkpointed offset. ``ingest_base``
        aligns the ingest-frame sequence with the router's pruned
        journal, so the durable skip rule sees the original numbering.
        """
        self._ingest_seq = msg.ingest_base
        for tp, offset in msg.watermarks:
            self.watermarks[tp] = offset
            self.view.seek(tp, offset)
        for tp, offset in msg.seeks:
            self.view.seek(tp, min(offset, self.view.position(tp)))

    def truncate_logs(self, msg: wire.TruncateLogs) -> None:
        """Checkpoint-aware retention on this frontend's durable logs.

        The cut is synced *first*: retention may delete completed
        segments holding records newer than the last recorded cut, and
        the cut's per-log end offsets must never fall below the
        retention start or a later recovery could not roll back to it.
        """
        if self.durable_dir is None:
            return
        self.sync_durable(force=True)
        self.bus.truncate_below(dict(msg.offsets))

    def worker_restarted(self, msg: wire.WorkerRestarted) -> None:
        """Re-link a restarted worker and rewind its tasks for replay.

        Complete frames left in the old socket are salvaged first (they
        are valid pre-crash results and advance the watermark, shrinking
        the replay's reply window); the link is then dropped, credits
        reset (in-flight batches died with the process), and every owned
        task of that worker seeks back to its checkpointed offset.
        """
        worker_id = msg.worker_id
        conn = self.conns.get(worker_id)
        if conn is not None:
            try:
                while conn.poll(0):
                    frame = wire.decode(conn.recv_bytes())
                    if not isinstance(frame, wire.ShmDoorbell):
                        self.handle_batch_done(worker_id, frame)
            except (EOFError, OSError):
                pass
        rings = self.rings.get(worker_id)
        if rings is not None:
            # Completed reply-ring frames are salvage too: the dead
            # worker published them before it died.
            try:
                for payload in rings[1].drain():
                    self.handle_batch_done(worker_id, columnar.decode(payload))
            except ShmError:
                pass
        self.link_down(worker_id)
        self.down.discard(worker_id)  # the restart re-authorizes the link
        self.addrs[worker_id] = msg.addr
        for tp, offset in msg.seeks:
            if self.routes.get(tp) == worker_id:
                self.view.seek(tp, min(offset, self.view.position(tp)))
        if self.backfills:
            # The fresh worker restored from a checkpoint that may
            # predate an in-flight splice: re-replay its tasks to the
            # restored frontier and re-install there.
            affected = {
                tp for tp, owner in self.routes.items() if owner == worker_id
            }
            for job in self.backfills.values():
                job.forget(affected)

    def _close_conn(self, worker_id: str) -> None:
        conn = self.conns.pop(worker_id, None)
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        for ring in self.rings.pop(worker_id, ()):
            ring.close(unlink=True)
        self.outstanding[worker_id] = 0

    def link_down(self, worker_id: str) -> None:
        """Drop a *failed* worker link; its outstanding credits died
        with it.

        The worker stays quarantined (no reconnect, no dispatch) until
        the router's ``WorkerRestarted`` arrives with the seek-back; its
        backlog simply accumulates in the logs meanwhile. Planned route
        removals go through :meth:`_close_conn` instead and do not
        quarantine.
        """
        self._close_conn(worker_id)
        self.down.add(worker_id)

    def _link(self, worker_id: str):
        conn = self.conns.get(worker_id)
        if conn is not None:
            return conn
        if worker_id in self.down:
            return None
        addr = self.addrs.get(worker_id)
        if addr is None:
            return None
        conn = _connect(addr, time_source=self._time)
        if conn is None:
            return None
        if self.transport == "shm":
            # Fresh rings per link incarnation; the hello on the (FIFO)
            # socket lands before any doorbell, so the worker attaches
            # before the first ring frame is announced.
            tag = f"{self._shm_prefix}-{self.frontend_id}-{self._link_seq}"
            self._link_seq += 1
            work = ShmRing.create(
                "producer", name=f"{tag}-work", time_source=self._time
            )
            reply = ShmRing.create(
                "consumer", name=f"{tag}-reply", time_source=self._time
            )
            try:
                conn.send_bytes(
                    wire.encode(wire.ShmHello(work.name, reply.name))
                )
            except OSError:
                work.close(unlink=True)
                reply.close(unlink=True)
                conn.close()
                return None  # worker died post-accept; retried later
            self.rings[worker_id] = (work, reply)
        self.conns[worker_id] = conn
        self.outstanding.setdefault(worker_id, 0)
        return conn

    # -- data plane -----------------------------------------------------------

    def ingest(self, msg: wire.IngestBatch) -> None:
        """Append routed events to the owned partition logs, in order.

        Each ingest frame consumes one sequence number. A frame whose
        sequence falls below the recovered durable cut is a write-ahead
        journal replay of appends the reopened logs already hold — it
        advances the sequence and nothing else.
        """
        seq = self._ingest_seq
        self._ingest_seq = seq + 1
        self.events_ingested += len(msg.entries)
        self.telemetry.counter_add(
            "frontend_events_ingested_total", len(msg.entries)
        )
        if msg.trace is not None:
            self._active_span = msg.trace[0]
        if seq < self._durable_applied:
            return
        log = self.bus.log
        with self.telemetry.time_stage("frontend_ingest_ms"):
            for correlation_id, event, targets in msg.entries:
                for partitioner, partition in targets:
                    tp = TopicPartition(
                        topic_name(msg.stream, partitioner), partition
                    )
                    log(tp).append(correlation_id, event, event.timestamp)
        self._ingested_since_sync += 1

    def sync_durable(self, force: bool = False) -> None:
        """Advance the consistent cut: fsync the logs, then the cut file.

        Ordering is the whole contract — data first, cut second — so the
        cut never describes state the disk does not hold. After the cut
        lands, every received ingest frame is durably applied; the next
        :meth:`flush` reports that count so the router can prune its
        write-ahead journal.
        """
        if self.durable_dir is None:
            return
        if not force and self._ingested_since_sync == 0:
            return
        self._ingested_since_sync = 0
        with self.telemetry.time_stage("frontend_fsync_ms"):
            self.bus.flush()
            ends = {
                tp: self.bus.log(tp).end_offset
                for tp in self.bus.all_partitions()
            }
            write_cut(self.durable_dir, self._ingest_seq, ends)
        if self._ingest_seq > self._durable_applied:
            self._durable_applied = self._ingest_seq
            self._durable_dirty = True

    def dispatch(self) -> int:
        """Ship contiguous offset runs to their owning workers."""
        with self.telemetry.time_stage("frontend_dispatch_ms"):
            return self._dispatch_runs()

    def _dispatch_runs(self) -> int:
        shipped = 0
        pending = self.pending
        telemetry = self.telemetry
        for tp in self.view.assignment():
            worker_id = self.routes.get(tp)
            if worker_id is None:
                continue
            if self.outstanding.get(worker_id, 0) >= self.max_outstanding:
                continue
            conn = self._link(worker_id)
            if conn is None:
                continue
            messages = self.view.poll_one(tp, self.batch_max)
            if not messages:
                continue
            watermark = self.watermarks.get(tp, 0)
            records = []
            for message in messages:
                records.append((message.offset, message.value))
                # Offsets below the watermark are replays whose replies
                # the worker suppresses — tracking them again would leak.
                if message.offset >= watermark:
                    pending[(tp, message.offset)] = message.key
            trace = None
            if telemetry.enabled:
                # Continue the router-minted span; the send timestamp
                # lets the worker attribute its queue wait to this hop.
                trace = (
                    self._active_span or "",
                    (("sent_ms", telemetry.now() * 1000.0),),
                )
            work = wire.WorkBatch(tp, watermark, records, trace)
            rings = self.rings.get(worker_id)
            try:
                if rings is not None:
                    rings[0].send(columnar.encode(work))
                    conn.send_bytes(DOORBELL)
                else:
                    conn.send_bytes(wire.encode(work))
            except (OSError, ShmError):
                # Dead worker: the restart announcement re-seeks this
                # task below the lost records, so the replay covers them.
                self.link_down(worker_id)
                continue
            self.outstanding[worker_id] = self.outstanding.get(worker_id, 0) + 1
            shipped += len(records)
        return shipped

    def drain_rings(
        self, stale_after: float = shm.DEFAULT_STALE_AFTER
    ) -> None:
        """Beat own heartbeats, merge reply-ring frames, police peers.

        A link whose worker stopped beating (or marked its side closed)
        is quarantined exactly like a dead socket: :meth:`link_down`
        drops the rings and credits, and dispatch stays suspended until
        the router's ``WorkerRestarted`` re-authorizes the link with the
        matching seek-back. No-op on socket links.
        """
        for worker_id in list(self.rings):
            work, reply = self.rings[worker_id]
            work.beat()
            reply.beat()
            try:
                for payload in reply.drain():
                    self.handle_batch_done(worker_id, columnar.decode(payload))
            except ShmError:
                self.link_down(worker_id)
                continue
            if work.peer_closed() or work.peer_stale(stale_after):
                self.link_down(worker_id)

    def close_links(self) -> None:
        """Drop every worker link; owned ring segments are unlinked."""
        for worker_id in list(self.conns):
            self._close_conn(worker_id)
        for worker_id in list(self.rings):
            self._close_conn(worker_id)

    def handle_batch_done(self, worker_id: str, msg: wire.BatchDone) -> None:
        """Merge one finished batch: replies, watermark, progress."""
        if isinstance(msg, wire.BackfillStale):
            # The worker refused an install whose cut sat behind its
            # frontier (our restored snapshot lagged it): forget the
            # task and only re-splice at or above the reported offset.
            job = self.backfills.get(msg.metric_id)
            if job is not None:
                job.forget({msg.tp})
                job.floor[msg.tp] = msg.next_offset
            return
        if not isinstance(msg, wire.BatchDone):
            raise TypeError(f"unexpected data frame: {type(msg).__name__}")
        self.outstanding[worker_id] = max(0, self.outstanding.get(worker_id, 0) - 1)
        if msg.stats is not None:
            self._worker_snapshots[worker_id] = msg.stats
        tp = msg.tp
        with self.telemetry.time_stage("frontend_reply_merge_ms"):
            for offset, results in msg.replies:
                correlation_id = self.pending.pop((tp, offset), None)
                if correlation_id is None or results is None:
                    continue
                self._reply_buf.append((correlation_id, tp.topic, results))
        self.watermarks[tp] = max(self.watermarks.get(tp, 0), msg.next_offset)
        self._wm_dirty = True
        bucket = self._processed_buf.setdefault(worker_id, [0, 0])
        bucket[0] += msg.processed
        bucket[1] += len(msg.replies)
        self.replies_collected += len(msg.replies)
        self.telemetry.counter_add(
            "frontend_replies_collected_total", len(msg.replies)
        )

    def idle(self) -> bool:
        """True when nothing is in flight or awaiting dispatch."""
        return (
            not any(self.outstanding.values())
            and self.view.lag() == 0
            and not self._reply_buf
        )

    def flush(self, conn) -> None:
        """Ship buffered replies/progress to the router; ack drains."""
        if self._records_buf:
            for page in self._records_buf:
                conn.send_bytes(wire.encode(page))
            self._records_buf = []
        if (
            self._reply_buf or self._wm_dirty or self._processed_buf
            or self._durable_dirty
        ):
            entries = self._reply_buf
            self._reply_buf = []
            processed = tuple(
                (worker_id, counts[0], counts[1])
                for worker_id, counts in self._processed_buf.items()
            )
            self._processed_buf = {}
            watermarks = (
                self._sorted_watermarks() if self._wm_dirty else ()
            )
            self._wm_dirty = False
            self._durable_dirty = False
            chunks = [
                entries[i:i + REPLY_CHUNK]
                for i in range(0, len(entries), REPLY_CHUNK)
            ] or [[]]
            # Watermarks (and the durable cut) ride the LAST chunk: the
            # router snapshots them as replied-up-to-here / prune-up-to-
            # here, so they must never precede reply entries that could
            # still be lost with this process — a crash mid-flush must
            # leave the router's snapshot at or below the replies it
            # actually received. Telemetry rides there too: one bundle
            # of this frontend's snapshot plus the latest raw worker
            # snapshots (forwarded without re-serialising).
            bundle = None
            if self.telemetry.enabled:
                now = self.telemetry.now()
                shipped = self._stats_shipped_at
                if shipped is None or now - shipped >= 0.02:
                    bundle = encode_bundle(
                        [encode_snapshot(self.telemetry.snapshot())]
                        + list(self._worker_snapshots.values())
                    )
                    self._stats_shipped_at = now
            last = len(chunks) - 1
            for index, chunk in enumerate(chunks):
                conn.send_bytes(
                    wire.encode(
                        wire.ReplyBatch(
                            chunk,
                            watermarks if index == last else (),
                            processed if index == last else (),
                            self._durable_applied if index == last else 0,
                            stats=bundle if index == last else None,
                        )
                    )
                )
        if self.draining is not None and self.idle():
            conn.send_bytes(
                wire.encode(
                    wire.DrainAck(self.draining, self._sorted_watermarks())
                )
            )
            self.draining = None

    def _sorted_watermarks(self) -> tuple[tuple[TopicPartition, int], ...]:
        return tuple(
            sorted(self.watermarks.items(), key=lambda pair: str(pair[0]))
        )


class FrontendBackfill:
    """One backfill job's frontend half: shadows + in-line installs.

    In router mode the frontends host the backfill readers — each owns
    its tasks' partition logs *and* their dispatch position, so the
    splice point is decided in the loop thread that also ships the
    work: when a shadow catches the task's
    :meth:`~repro.messaging.consumer.PartitionView.position`, nothing
    past that offset has been dispatched yet, and the
    :class:`~repro.shard.wire.BackfillInstall` sent on the task's data
    link lands (socket-FIFO) between the batches below the cut and the
    ones above it. The worker stashes and splices at exactly that
    offset; its ack flows through the supervisor control pipe to the
    router, which owns completion. On the shm transport later ring
    batches can overtake the socket frame — the worker re-polls the
    data socket before each ring frame, restoring the ordering.

    Recovery mirrors the other topologies: a worker restart or a route
    move calls :meth:`forget` for the affected tasks (the fresh worker
    restored from a checkpoint that may predate the splice), and the
    next :meth:`step` re-replays to the restored frontier and
    re-installs — a duplicate install is re-acked without applying.
    """

    def __init__(self, engine: FrontendEngine, start: wire.BackfillStart) -> None:
        self.engine = engine
        self.metric = start.metric
        self.peers = start.peers
        self.seeds = dict(start.seeds)
        self.stream = engine.catalog.streams[start.metric.stream]
        self.shadows: dict[TopicPartition, ShadowReplay] = {}
        self.installed: set[TopicPartition] = set()
        #: per-task minimum splice offset, raised by BackfillStale nacks
        self.floor: dict[TopicPartition, int] = {}
        self.batch = 512

    def step(self) -> int:
        engine = self.engine
        work = 0
        for tp in engine.view.assignment():
            if tp.topic != self.metric.topic or tp in self.installed:
                continue
            worker_id = engine.routes.get(tp)
            if worker_id is None or worker_id in engine.down:
                continue  # quarantined; WorkerRestarted re-authorizes
            frontier = engine.view.position(tp)
            shadow = self.shadows.get(tp)
            if shadow is not None and shadow.position > frontier:
                # The task was re-seeked below the shadow (worker
                # restart from an older checkpoint): restart the replay.
                shadow.close()
                del self.shadows[tp]
                shadow = None
            if shadow is None:
                shadow = self._make_shadow(tp)
                self.shadows[tp] = shadow
            work += shadow.step(self.batch, stop=frontier)
            if shadow.position != frontier:
                continue
            if frontier < self.floor.get(tp, 0):
                continue  # worker nacked this cut; wait for dispatch to pass it

            conn = engine._link(worker_id)
            if conn is None:
                continue
            state = shadow.export()
            install = wire.BackfillInstall(
                tp,
                frontier,
                self.metric,
                state.state_rows,
                state.distinct_rows,
                state.iterator_positions,
            )
            try:
                conn.send_bytes(wire.encode(install))
            except OSError:
                engine.link_down(worker_id)
                continue
            self.installed.add(tp)
            shadow.close()
            del self.shadows[tp]
            work += 1
        return work

    def _make_shadow(self, tp: TopicPartition) -> ShadowReplay:
        """A shadow from offset 0, or — when retention already reclaimed
        the early segments — seeded from the stored checkpoint the
        router shipped with the start frame."""
        engine = self.engine
        config = engine.unit_config
        try:
            return ShadowReplay(
                engine.bus, tp, self.stream, self.metric,
                reservoir_config=config.reservoir,
                lsm_config=config.lsm,
            )
        except ReplayError:
            checkpoint = self.seeds.get(tp)
            if checkpoint is None:
                raise
            seed_metrics = tuple(
                m for m in self.peers if m.metric_id in checkpoint.metric_ids
            )
            return ShadowReplay(
                engine.bus, tp, self.stream, self.metric,
                reservoir_config=config.reservoir,
                lsm_config=config.lsm,
                seed_checkpoint=checkpoint,
                seed_metrics=seed_metrics,
            )

    def forget(self, tasks: set[TopicPartition]) -> None:
        """Un-install + drop shadows for ``tasks``; they re-replay."""
        for tp in tasks:
            self.installed.discard(tp)
            shadow = self.shadows.pop(tp, None)
            if shadow is not None:
                shadow.close()

    def close(self) -> None:
        """Release every shadow's retention pin; idempotent."""
        for shadow in self.shadows.values():
            shadow.close()
        self.shadows.clear()


def shard_frontend_main(
    conn,
    frontend_id: str,
    batch_max: int = 256,
    max_outstanding: int = 2,
    durable_dir: str | None = None,
    durable_fsync: str = "batch",
    durable_segment_bytes: int = 1 << 20,
    transport: str = "socket",
    shm_prefix: str | None = None,
    unit_config: UnitConfig | None = None,
) -> None:
    """Frontend process entrypoint: route, dispatch, merge — until stopped.

    One duplex pipe to the router (ingest + control in, replies out) and
    one data socket per routed worker. The router pipe is drained fully
    before worker traffic, so control messages (assignment, worker
    restarts, drains) are applied before the work they govern. With
    ``transport="shm"`` each worker link upgrades to a shared-memory
    ring pair (``ShmHello`` on the freshly dialed socket); batches and
    replies then flow columnar-packed through the rings and the socket
    carries only doorbells, with stale-heartbeat policing quarantining
    a silent worker like a dead socket. With ``durable_dir`` the engine
    hosts disk-backed logs: each loop iteration that ingested frames
    ends with a durable sync (log fsync, then the consistent cut),
    whose applied-frame count rides the next ``ReplyBatch`` so the
    router can prune its write-ahead journal. Any exception is reported
    as a ``WorkerError`` frame before the process exits, mirroring the
    shard worker contract.
    """
    engine = FrontendEngine(
        frontend_id, batch_max, max_outstanding, durable_dir,
        durable_fsync=durable_fsync,
        durable_segment_bytes=durable_segment_bytes,
        transport=transport,
        shm_prefix=shm_prefix,
        unit_config=unit_config,
    )
    parent_pid = os.getppid()
    try:
        while True:
            wait_on = [conn, *engine.conns.values()]
            timeout = 0.5 if engine.rings else 1.0
            if engine.backfills:
                # A replaying shadow makes progress per loop round, not
                # per inbound frame — keep the loop hot until the stop.
                timeout = 0.01
            ready = set(multiprocessing.connection.wait(wait_on, timeout))
            if os.getppid() != parent_pid:
                # Router process killed without cleanup (pipe EOF never
                # fires: forked siblings hold each other's pipe ends
                # open); exit instead of squatting as an orphan.
                return
            if conn in ready:
                while True:
                    msg = wire.decode(conn.recv_bytes())
                    if isinstance(msg, wire.Shutdown):
                        engine.sync_durable()
                        return
                    if isinstance(msg, wire.Crash):
                        os._exit(23)  # fault injection: die without cleanup
                    engine.handle(msg)
                    if not conn.poll(0):
                        break
            for worker_id, data_conn in [
                (worker_id, c)
                for worker_id, c in list(engine.conns.items())
                if c in ready
            ]:
                try:
                    while True:
                        msg = wire.decode(data_conn.recv_bytes())
                        # Doorbells only wake the loop; drain_rings
                        # below picks up the frames they announce.
                        if not isinstance(msg, wire.ShmDoorbell):
                            engine.handle_batch_done(worker_id, msg)
                        if not data_conn.poll(0):
                            break
                except (EOFError, OSError):
                    # Worker died mid-stream; the router announces the
                    # restart and this frontend re-seeks + replays then.
                    engine.link_down(worker_id)
            engine.drain_rings()
            engine.dispatch()
            engine.step_backfills()
            engine.sync_durable()
            engine.flush(conn)
    except EOFError:
        return  # router went away; nothing left to reply to
    except BaseException:
        try:
            conn.send_bytes(
                wire.encode(wire.WorkerError(traceback.format_exc(limit=8)))
            )
        except OSError:
            pass
        raise
    finally:
        # Unlink owned rings on every exit path short of SIGKILL (the
        # worker's EOF backstop and the router's sweep cover that one).
        engine.close_links()


# -- the client-side facade ---------------------------------------------------


@dataclass
class _PendingFanin:
    """A client request awaiting replies from its fanned-out topics."""

    event: Event
    stream: str
    expected: int
    sent_at_ms: int
    results: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: topics that already answered — the de-dup key that makes replayed
    #: replies (worker or frontend recovery) count at most once each.
    replied: set[str] = field(default_factory=set)


@dataclass
class FrontendHandle:
    """One live frontend process and its routing/recovery state."""

    frontend_id: str
    process: multiprocessing.process.BaseProcess
    conn: object
    #: ordered ``(ingest_seq, frame)`` entries (-1 for control frames) —
    #: replayed into a respawn to rebuild byte-identical partition logs.
    #: In-memory mode keeps every frame (the journal IS the durability
    #: story); durable mode prunes ingest frames below the frontend's
    #: reported cut, turning the journal into a bounded write-ahead
    #: buffer (control frames stay: catalogue and routes are in-memory).
    journal: list[tuple[int, bytes]] = field(default_factory=list)
    owned: set[TopicPartition] = field(default_factory=set)
    #: sequence the next IngestBatch frame will carry.
    ingest_seq: int = 0
    #: ingest frames the frontend reported durably applied (prune base).
    durable_seq: int = 0
    restarts: int = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class RouterBackfill:
    """The router half of one backfill: watch acks, own completion.

    The frontends do the replaying and splicing
    (:class:`FrontendBackfill`); worker acks flow through the
    supervisor control pipes into
    :attr:`~repro.shard.supervisor.ShardSupervisor.backfill_installed`.
    Once every task of the metric's topic acked, completion runs
    checkpoint-then-broadcast — a synchronous with-state checkpoint so
    the stored state already contains the splice, *then* the
    ``CreateMetric`` broadcast into the replayable worker control log
    (the reverse order would let a post-crash restore register the def
    against pre-splice state) — and finally tells the frontends to
    stop, pruning the journaled start frame so respawns stop replaying
    the job.
    """

    def __init__(self, router: "ClusterRouter", metric, start_frame: bytes) -> None:
        self.router = router
        self.metric = metric
        self.start_frame = start_frame
        self.done = False

    def step(self) -> int:
        if self.done:
            return 0
        router = self.router
        metric_id = self.metric.metric_id
        tasks = [
            tp for tp in router._event_tasks() if tp.topic == self.metric.topic
        ]
        acked = router.supervisor.backfill_installed
        if not tasks or any((tp, metric_id) not in acked for tp in tasks):
            return 0
        try:
            router.supervisor.request_checkpoints(with_state=True)
        except EngineError:
            # A worker vanished mid-completion; its restart resets the
            # affected acks and the job keeps running.
            return 0
        router._published += 1
        router.catalog.apply(CreateMetricOp(self.metric))
        router.supervisor.broadcast_control(wire.CreateMetric(self.metric))
        stop = wire.encode(wire.BackfillStop(metric_id))
        for handle in router._frontends.values():
            handle.journal = [
                entry for entry in handle.journal if entry[1] != self.start_frame
            ]
            try:
                handle.conn.send_bytes(stop)
            except OSError:
                pass  # dead frontend; its respawn never sees the job
        for key in [k for k in acked if k[1] == metric_id]:
            acked.discard(key)
        self.done = True
        return 1

    def reset(self, tasks: set[TopicPartition] | None = None) -> None:
        """Forget acks — all, or just for ``tasks`` — after a worker
        restart or rebalance rebuilt their state from checkpoints that
        may predate the splice. The owning frontends re-install
        autonomously (their ``WorkerRestarted``/``FrontendAssign``
        handling forgets the same tasks)."""
        if self.done:
            return
        acked = self.router.supervisor.backfill_installed
        for tp, metric_id in list(acked):
            if metric_id != self.metric.metric_id:
                continue
            if tasks is None or tp in tasks:
                acked.discard((tp, metric_id))


class ClusterRouter:
    """N frontend processes + W shard workers behind the cluster API.

    ``create_cluster("process", workers=W, frontends=F)`` returns this
    facade for ``F >= 2`` (and the single-coordinator
    :class:`~repro.shard.parallel.ParallelCluster` otherwise); the bench
    harness constructs it directly with ``frontends=1`` to measure the
    router architecture's single-frontend baseline. The client API —
    DDL, ``send``/``send_batch``, ``Reply`` objects, ``stats()`` — is
    shared with ``RailgunCluster``/``ParallelCluster``, and replies are
    byte-identical to both.
    """

    def __init__(
        self,
        workers: int = 2,
        frontends: int = 2,
        unit_config: UnitConfig | None = None,
        tick_ms: int = 1,
        batch_max: int = 256,
        ingest_max: int = 256,
        checkpoint_every: int | None = 2048,
        assignment_strategy: object | None = None,
        frontend_strategy: object | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        durable_dir: str | None = None,
        durable_fsync: str = "batch",
        durable_segment_bytes: int = 1 << 20,
        transport: str | None = None,
        time_source: TimeSource | None = None,
    ) -> None:
        if frontends <= 0:
            raise EngineError(f"need at least one frontend: {frontends}")
        self._time = resolve_time_source(time_source)
        transport = shm.resolve_transport(transport)
        if transport not in ("socket", "shm"):
            raise EngineError(f"unknown transport {transport!r}")
        self.transport = transport
        #: shared ring-name prefix across all frontends; swept on close
        #: as the backstop for rings a SIGKILLed frontend left behind.
        self._shm_prefix = f"rgshm-{uuid.uuid4().hex[:8]}"
        #: router-side registry, shared with the supervisor; the merged
        #: cluster view (router + frontends + workers) is
        #: :meth:`telemetry`.
        self.metrics = MetricsRegistry("router", time_source=self._time)
        self._span_seq = 0
        #: latest telemetry bundle per frontend (its own snapshot plus
        #: forwarded worker snapshots), piggybacked on ``ReplyBatch``.
        self._frontend_bundles: dict[str, bytes] = {}
        self.clock = ManualClock(start_ms=1)
        self.catalog = Catalog()
        self.tick_ms = tick_ms
        self.batch_max = batch_max
        self.ingest_max = ingest_max
        self.durable_dir = resolve_durable_dir(durable_dir, "router")
        self.durable_fsync = durable_fsync
        self.durable_segment_bytes = durable_segment_bytes
        self._ctx = mp_context if mp_context is not None else _default_context()
        self._socket_dir = tempfile.mkdtemp(prefix="railgun-shard-")
        self.supervisor = ShardSupervisor(
            workers,
            unit_config=unit_config,
            strategy=assignment_strategy,
            time_source=self._time,
            checkpoint_interval=checkpoint_every,
            mp_context=self._ctx,
            listen_dir=self._socket_dir,
            checkpoint_dir=(
                os.path.join(self.durable_dir, "checkpoints")
                if self.durable_dir is not None
                else None
            ),
            telemetry=self.metrics,
        )
        self.supervisor.on_restart = self._on_worker_restart
        self.frontend_strategy = (
            frontend_strategy
            if frontend_strategy is not None
            else StickyAssignmentStrategy(0)
        )
        self._frontends: dict[str, FrontendHandle] = {}
        for index in range(frontends):
            frontend_id = f"fe-{index}"
            self._frontends[frontend_id] = self._spawn_frontend(frontend_id)
        #: task -> owning frontend (sticky across rebalances).
        self._fe_owner: dict[TopicPartition, str] = {}
        #: router-side snapshot of replied watermarks (piggybacked on
        #: every ReplyBatch) — the seed for frontend respawn suppression.
        self._watermarks: dict[TopicPartition, int] = {}
        self.pending: dict[int, _PendingFanin] = {}
        self.completed: dict[int, Reply] = {}
        self._next_correlation = 0
        #: mirror of the other facades' ``bus.messages_published`` (one
        #: per DDL op + one per event per fanned-out topic): auto-minted
        #: ``client-...`` event ids must match ``ParallelCluster``'s for
        #: the same call sequence, or dict-input replies would carry
        #: different event identities across topologies.
        self._published = 0
        self._next_drain = 0
        self._drain_acks: set[tuple[int, str]] = set()
        #: running/completed backfill jobs (router half of each).
        self._backfills: list[RouterBackfill] = []
        #: answered log-read pages, keyed by (task, begin offset).
        self._read_pages: dict[tuple[TopicPartition, int], wire.BackfillRecords] = {}
        self.frontend_errors: list[str] = []
        self.rebalance_count = 0
        #: checkpoint-store version the logs were last truncated against.
        self._truncated_at = 0
        self._closed = False
        self._close_lock = threading.Lock()
        #: thread-safe handoff from other threads (the asyncio front
        #: door) into the thread that owns this router; drained by
        #: ``service_step``. The queue is the ONLY structure touched
        #: from foreign threads — routing, pending state and reply
        #: delivery all stay on the servicing thread.
        self._submissions: queue.SimpleQueue = queue.SimpleQueue()
        #: correlation -> (on_reply, index in the submitted batch);
        #: tracks which completed replies belong to submitted work (as
        #: opposed to direct ``send``/``send_batch`` calls).
        self._service_pending: dict[int, tuple[Any, int]] = {}

    # -- topology -------------------------------------------------------------

    def _spawn_frontend(self, frontend_id: str) -> FrontendHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        frontend_dir = None
        if self.durable_dir is not None:
            frontend_dir = os.path.join(self.durable_dir, "frontends", frontend_id)
            os.makedirs(frontend_dir, exist_ok=True)
        process = self._ctx.Process(
            target=shard_frontend_main,
            args=(
                child_conn, frontend_id, self.batch_max, 2, frontend_dir,
                self.durable_fsync, self.durable_segment_bytes,
                self.transport, self._shm_prefix,
                self.supervisor.unit_config,
            ),
            name=f"railgun-{frontend_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return FrontendHandle(frontend_id, process, parent_conn)

    def frontend_ids(self) -> list[str]:
        """Current frontend processes, in spawn order."""
        return list(self._frontends)

    def worker_ids(self) -> list[str]:
        """Current shard workers."""
        return self.supervisor.worker_ids()

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a shard worker (fault injection for tests)."""
        self.supervisor.kill_worker(worker_id)

    def kill_frontend(self, frontend_id: str) -> None:
        """SIGKILL a frontend process (fault injection for tests)."""
        handle = self._frontend(frontend_id)
        handle.process.kill()

    def _frontend(self, frontend_id: str) -> FrontendHandle:
        try:
            return self._frontends[frontend_id]
        except KeyError:
            raise EngineError(f"unknown frontend {frontend_id!r}") from None

    def add_worker(self) -> str:
        """Spawn one more shard worker and rebalance onto it.

        The data plane is drained and checkpoints refreshed first, so
        moved tasks restore on the new worker from up-to-date state and
        replay nothing.
        """
        self.drain()
        self._refresh_checkpoints()
        worker_id = self.supervisor.add_worker()
        self._rebalance()
        return worker_id

    def remove_worker(self, worker_id: str) -> None:
        """Retire a worker; its tasks hand state off via the checkpoint
        store and replay only the (empty, post-drain) tail elsewhere."""
        self.drain()
        self._refresh_checkpoints()
        self.supervisor.remove_worker(worker_id)
        self._rebalance()

    def _refresh_checkpoints(self) -> None:
        try:
            self.supervisor.request_checkpoints(with_state=True)
        except EngineError:
            pass  # best effort; stored checkpoints plus replay cover it

    # -- DDL ------------------------------------------------------------------

    def create_stream(
        self,
        name: str,
        partitioners: Iterable[str],
        partitions: int = 4,
        schema: object = (),
        with_global_partitioner: bool = False,
    ) -> None:
        """Register a stream: schema + partitioners + topic creation."""
        stream = build_stream_def(
            self.catalog, name, partitioners, partitions, schema,
            with_global_partitioner,
        )
        self._published += 1
        self.catalog.apply(CreateStreamOp(stream))
        self.supervisor.broadcast_control(wire.CreateStream(stream))
        self._broadcast_frontends(wire.CreateStream(stream))
        self._rebalance()

    def create_metric(self, query_text: str, backfill: bool = False) -> int:
        """Register a metric from a Figure 4 statement; returns metric id."""
        metric = build_metric_def(self.catalog, query_text, backfill)
        self._published += 1
        self.catalog.apply(CreateMetricOp(metric))
        activations = tuple(
            sorted(
                ((tp, self._watermarks.get(tp, 0))
                 for tp in self._event_tasks() if tp.topic == metric.topic),
                key=lambda pair: str(pair[0]),
            )
        )
        self.supervisor.broadcast_control(
            wire.CreateMetric(metric, activations)
        )
        self._sync_workers()
        return metric.metric_id

    # -- replay & backfill ----------------------------------------------------

    def backfill_metric(self, query_text: str) -> int:
        """Define a metric *after the fact* and materialize it from the logs.

        The metric id is reserved immediately; the owning frontends —
        which host the partition logs — replay each task through a
        shadow and splice it into the worker at the exact dispatch cut
        (ingest never pauses), while a router-side
        :class:`RouterBackfill` job watches the worker acks and runs
        the completion. Only on completion does the ``CreateMetric``
        broadcast reach the worker control log — an incomplete backfill
        does not survive a router restart and must be re-issued. Use
        :meth:`backfill_status` to observe completion.
        """
        metric = build_metric_def(self.catalog, query_text)
        self.catalog.apply(CreateMetricOp(metric))
        peers = tuple(
            m
            for m in self.catalog.metrics_for_topic(metric.topic)
            if m.metric_id != metric.metric_id
        )
        store = self.supervisor.checkpoints
        seeds = tuple(
            (tp, checkpoint)
            for tp in self._event_tasks()
            if tp.topic == metric.topic
            and (checkpoint := store.get(tp)) is not None
        )
        frame = self._broadcast_frontends(
            wire.BackfillStart(metric, peers, seeds)
        )
        self._backfills.append(RouterBackfill(self, metric, frame))
        return metric.metric_id

    def backfill_status(self, metric_id: int) -> str:
        """``"running"``, ``"complete"``, or ``"unknown"`` for an id."""
        for job in self._backfills:
            if job.metric.metric_id == metric_id:
                return "complete" if job.done else "running"
        return "unknown"

    def metric_values(self, metric_id: int) -> dict[tuple, dict[str, Any]]:
        """A metric's current per-group values, merged across partitions.

        Workers hold the live state, so this takes a synchronous
        with-state checkpoint and reads the values off restored
        copies — exact, because a restore is byte-faithful to the
        worker's state at the checkpoint boundary.
        """
        metric = self.catalog.metrics.get(metric_id)
        if metric is None:
            raise EngineError(f"unknown metric id {metric_id}")
        self.supervisor.request_checkpoints(with_state=True)
        stream = self.catalog.streams[metric.stream]
        config = self.supervisor.unit_config
        merged: dict[tuple, dict[str, Any]] = {}
        for tp in self._event_tasks():
            if tp.topic != metric.topic:
                continue
            checkpoint = self.supervisor.checkpoints.get(tp)
            if checkpoint is None:
                continue
            metrics = [
                m
                for m in self.catalog.metrics_for_topic(metric.topic)
                if m.metric_id in checkpoint.metric_ids
            ]
            processor = TaskProcessor.restore(
                checkpoint,
                stream,
                metrics,
                reservoir_config=config.reservoir,
                lsm_config=config.lsm,
            )
            if processor.has_metric(metric_id):
                merged.update(processor.metric_values(metric_id))
        return merged

    def query_as_of(
        self, metric_id: int, as_of: int, batch: int = 256
    ) -> AsOfResult:
        """Time-travel read: the metric's values at event time ``as_of``.

        The router owns no partition logs, so the replay tail is paged
        in from the owning frontends (``BackfillRead`` round-trips);
        the seeding rule is the shared one — a stored checkpoint is
        used when every event it folded sits at or before ``as_of``,
        which is what keeps the replay bounded.
        """
        metric = self.catalog.metrics.get(metric_id)
        if metric is None:
            raise EngineError(f"unknown metric id {metric_id}")
        stream = self.catalog.streams[metric.stream]
        metrics = sorted(
            self.catalog.metrics_for_topic(metric.topic),
            key=lambda m: m.metric_id,
        )
        config = self.supervisor.unit_config
        merged: dict[tuple, dict[str, Any]] = {}
        replayed = 0
        log_records = 0
        seeded = 0
        for tp in self._event_tasks():
            if tp.topic != metric.topic:
                continue
            checkpoint = self.supervisor.checkpoints.get(tp)
            processor, begin = seed_processor(
                tp, stream, metrics, checkpoint, as_of,
                config.reservoir, config.lsm,
            )
            if begin > 0:
                seeded += 1
            position = begin
            done = False
            end_offset = 0
            while not done:
                page = self._fetch_page(tp, position, batch)
                end_offset = page.end_offset
                if position < page.start_offset:
                    raise ReplayError(
                        f"as-of replay for {tp} needs offset {position} "
                        f"but the log starts at {page.start_offset}"
                    )
                if not page.entries:
                    break
                records = []
                for record_offset, event in page.entries:
                    if event.timestamp > as_of:
                        done = True
                        break
                    records.append((record_offset, event))
                if records:
                    processor.process_batch(records)
                    replayed += len(records)
                    position = records[-1][0] + 1
            log_records += end_offset
            if processor.has_metric(metric_id):
                merged.update(processor.metric_values(metric_id))
        return AsOfResult(
            values=merged,
            replayed=replayed,
            log_records=log_records,
            seeded=seeded,
        )

    def _fetch_page(
        self,
        tp: TopicPartition,
        begin: int,
        max_records: int,
        timeout: float = 10.0,
    ) -> wire.BackfillRecords:
        """One ``BackfillRead`` round-trip to the task's owning frontend
        (re-asked across a frontend respawn)."""
        owner = self._fe_owner.get(tp)
        if owner is None:
            raise EngineError(f"partition {tp} has no frontend owner")
        handle = self._frontends[owner]
        key = (tp, begin)
        self._read_pages.pop(key, None)
        request = wire.encode(wire.BackfillRead(tp, begin, max_records))
        asked = handle.restarts
        try:
            handle.conn.send_bytes(request)
        except OSError:
            pass  # respawn detected below; re-asked then
        deadline = self._time.deadline(timeout)
        while True:
            page = self._read_pages.pop(key, None)
            if page is not None:
                return page
            if deadline.expired():
                raise EngineError(
                    f"frontend {owner} did not answer a log read for {tp}"
                )
            self.pump()
            if handle.restarts != asked:
                asked = handle.restarts
                try:
                    handle.conn.send_bytes(request)
                except OSError:
                    pass

    def delete_metric(self, metric_id: int) -> None:
        """Remove a metric cluster-wide."""
        self._published += 1
        self.catalog.apply(DeleteMetricOp(metric_id))
        self.supervisor.broadcast_control(wire.DeleteMetric(metric_id))
        self._sync_workers()

    def _sync_workers(self) -> None:
        """Barrier: every live worker has consumed the control frames
        broadcast so far.

        Worker control rides the supervisor pipes while work batches
        ride the frontends' data sockets — two unordered channels. DDL
        that changes what replies *contain* (a metric appearing or
        vanishing) must therefore round-trip the control pipe before
        returning, or an event dispatched right after the DDL could be
        processed against the old metric set and diverge from the
        single-process reference.
        """
        try:
            self.supervisor.request_checkpoints(with_state=False)
        except EngineError:
            pass  # a worker died mid-barrier; its restart replays the log

    def evolve_schema(self, stream: str, new_fields: object) -> None:
        """Append fields to a stream schema (old chunks stay readable)."""
        fields = _normalize_fields(new_fields)
        self._published += 1
        self.catalog.apply(EvolveSchemaOp(stream, fields))
        self.supervisor.broadcast_control(wire.EvolveSchema(stream, fields))

    def add_partitioner(self, stream: str, partitioner: str) -> None:
        """Add a top-level partitioner after stream creation (§4)."""
        if validate_new_partitioner(self.catalog, stream, partitioner) is None:
            return
        self._published += 1
        self.catalog.apply(AddPartitionerOp(stream, partitioner))
        self.supervisor.broadcast_control(wire.AddPartitioner(stream, partitioner))
        self._broadcast_frontends(wire.AddPartitioner(stream, partitioner))
        self._rebalance()

    def _broadcast_frontends(self, msg: object) -> bytes:
        frame = wire.encode(msg)
        for handle in self._frontends.values():
            handle.journal.append((-1, frame))
            try:
                handle.conn.send_bytes(frame)
            except OSError:
                pass  # dead frontend; the respawn replays the journal
        return frame

    def _event_tasks(self) -> list[TopicPartition]:
        tasks: list[TopicPartition] = []
        for stream in self.catalog.streams.values():
            for partitioner in stream.partitioners:
                count = 1 if partitioner == GLOBAL_PARTITIONER else stream.partitions
                topic = topic_name(stream.name, partitioner)
                tasks.extend(TopicPartition(topic, i) for i in range(count))
        return sorted(tasks, key=str)

    # -- the data path --------------------------------------------------------

    def send(
        self,
        stream: str,
        fields: Mapping[str, Any] | None = None,
        timestamp: int | None = None,
        event: Event | None = None,
        event_id: str | None = None,
        max_rounds: int = 2000,
    ) -> Reply:
        """Send one event and pump until its reply completes."""
        if event is None:
            if fields is None:
                raise EngineError("either fields or event is required")
            if timestamp is None:
                timestamp = self.clock.now()
            if event_id is None:
                event_id = f"client-{self._published:012d}"
            event = Event(event_id, timestamp, fields)
        metrics = self.metrics
        batch_started = metrics.now()
        correlation = self._route_and_ship(stream, [event])[0]
        metrics.counter_add("engine_batches_in_total")
        metrics.counter_add("engine_events_in_total")
        for _ in range(max_rounds):
            reply = self.completed.pop(correlation, None)
            if reply is not None:
                metrics.counter_add("engine_replies_out_total")
                metrics.observe_since("engine_batch_ms", batch_started)
                return reply
            self.pump()
        raise EngineError(
            f"reply for correlation {correlation} did not complete within "
            f"{max_rounds} pump rounds"
        )

    def send_batch(
        self,
        stream: str,
        batch: Iterable[Mapping[str, Any] | Event],
        max_rounds: int = 20000,
    ) -> list[Reply]:
        """Send a batch and pump until every reply lands; input order."""
        metrics = self.metrics
        batch_started = metrics.now()
        with metrics.time_stage("engine_ingest_ms"):
            events: list[Event] = []
            base_id = self._published
            for index, item in enumerate(batch):
                if isinstance(item, Event):
                    events.append(item)
                else:
                    events.append(
                        Event(
                            f"client-{base_id + index:012d}",
                            self.clock.now(),
                            item,
                        )
                    )
            correlations = self._route_and_ship(stream, events)
        metrics.counter_add("engine_batches_in_total")
        metrics.counter_add("engine_events_in_total", len(events))
        outstanding = set(correlations)
        for _ in range(max_rounds):
            if not outstanding:
                break
            self.pump()
            if self.completed:
                outstanding.difference_update(self.completed)
        if outstanding:
            raise EngineError(
                f"{len(outstanding)} of {len(correlations)} batched replies did "
                f"not complete within {max_rounds} pump rounds"
            )
        with metrics.time_stage("engine_reply_ms"):
            replies = [
                self.completed.pop(correlation) for correlation in correlations
            ]
        metrics.counter_add("engine_replies_out_total", len(replies))
        metrics.observe_since("engine_batch_ms", batch_started)
        return replies

    # -- thread-safe submission (the asyncio front door) ----------------------

    def submit_batch(self, stream: str, events: list[Event], on_reply) -> None:
        """Queue a batch for routing from another thread.

        ``on_reply(index, reply)`` fires on the thread running
        :meth:`service_step` once the ``index``-th event's fan-in
        completes; replies may complete (and fire) in any order. May be
        called from any thread — the ingest server's asyncio loop hands
        work to the router's service thread through exactly this hook.
        """
        self._submissions.put(("batch", stream, list(events), on_reply))

    def submit_call(self, fn, on_done) -> None:
        """Queue an arbitrary control-plane call (DDL, stats) from
        another thread; ``on_done(result, error)`` fires on the service
        thread with whichever of the two the call produced."""
        self._submissions.put(("call", fn, None, on_done))

    def submission_backlog(self) -> int:
        """Submissions accepted but not yet routed (queue-depth input
        for admission control)."""
        return self._submissions.qsize()

    def service_outstanding(self) -> int:
        """Submitted work not yet answered: queued submissions plus
        routed correlations whose fan-in has not completed."""
        return len(self._service_pending) + self._submissions.qsize()

    def service_step(self) -> int:
        """One service-thread round: drain submissions, pump, deliver.

        The front-door server runs this in a dedicated thread; the
        blocking wait inside :meth:`pump` (10ms on reply pipes when
        idle) doubles as the loop's pacing, so an idle server costs one
        wakeup per 10ms rather than a spin.
        """
        handled = 0
        while True:
            try:
                kind, a, b, callback = self._submissions.get_nowait()
            except queue.Empty:
                break
            if kind == "batch":
                self.metrics.counter_add("engine_batches_in_total")
                self.metrics.counter_add("engine_events_in_total", len(b))
                correlations = self._route_and_ship(a, b)
                for index, correlation in enumerate(correlations):
                    self._service_pending[correlation] = (callback, index)
                handled += len(correlations)
            else:
                try:
                    result = a()
                except Exception as exc:
                    callback(None, exc)
                else:
                    callback(result, None)
                handled += 1
        handled += self.pump()
        if self._service_pending and self.completed:
            for correlation in list(self.completed):
                entry = self._service_pending.pop(correlation, None)
                if entry is None:
                    continue  # a direct send/send_batch owns this reply
                reply = self.completed.pop(correlation)
                callback, index = entry
                self.metrics.counter_add("engine_replies_out_total")
                callback(index, reply)
        return handled

    def _route_and_ship(self, stream: str, events: list[Event]) -> list[int]:
        """Hash, bucket per frontend, frame and ship a run of events.

        The per-event hot path of the router: ``partition_for`` on each
        partitioner key (identical placement to the single-process bus),
        a pending-fanin entry, and one encoded entry per owning
        frontend. Frames are journaled before they are sent, so a
        frontend crash mid-ship loses nothing.
        """
        with self.metrics.time_stage("engine_dispatch_ms"):
            return self._route_and_ship_inner(stream, events)

    def _route_and_ship_inner(self, stream: str, events: list[Event]) -> list[int]:
        span = None
        if self.metrics.enabled:
            # One span per routed run; it rides the IngestBatch frames
            # and the frontends re-stamp it onto their WorkBatches.
            self._span_seq += 1
            span = f"router-{self._span_seq}"
        stream_def = self.catalog.streams.get(stream)
        if stream_def is None:
            raise EngineError(f"unknown stream {stream!r}")
        schema = stream_def.schema()
        expected = len(stream_def.topics())
        now = self.clock.now()
        partitioner_meta = [
            (
                partitioner,
                1 if partitioner == GLOBAL_PARTITIONER else stream_def.partitions,
                topic_name(stream, partitioner),
            )
            for partitioner in stream_def.partitioners
        ]
        buckets: dict[str, list] = {}
        correlations: list[int] = []
        pending = self.pending
        fe_owner = self._fe_owner
        for event in events:
            schema.validate_event(event)
            correlation = self._next_correlation
            self._next_correlation += 1
            per_frontend: dict[str, list[tuple[str, int]]] = {}
            for partitioner, partitions, topic in partitioner_meta:
                key = (
                    "__global__"
                    if partitioner == GLOBAL_PARTITIONER
                    else event.get(partitioner)
                )
                partition = partition_for(key, partitions)
                owner = fe_owner.get(TopicPartition(topic, partition))
                if owner is None:
                    raise EngineError(
                        f"partition {topic}-{partition} has no frontend owner"
                    )
                per_frontend.setdefault(owner, []).append((partitioner, partition))
            pending[correlation] = _PendingFanin(event, stream, expected, now)
            self._published += expected
            for owner, targets in per_frontend.items():
                buckets.setdefault(owner, []).append(
                    (correlation, event, tuple(targets))
                )
            correlations.append(correlation)
        for frontend_id, entries in buckets.items():
            handle = self._frontends[frontend_id]
            self.metrics.counter_add(
                "router_events_routed_total", len(entries), label=frontend_id
            )
            for start in range(0, len(entries), self.ingest_max):
                frame = wire.encode(
                    wire.IngestBatch(
                        stream,
                        entries[start:start + self.ingest_max],
                        (span, ()) if span is not None else None,
                    )
                )
                handle.journal.append((handle.ingest_seq, frame))
                handle.ingest_seq += 1
                try:
                    handle.conn.send_bytes(frame)
                except OSError:
                    continue  # dead frontend; the respawn replays the journal
                # Keep the reply direction drained while we flood the
                # ingest direction — a full reply pipe would wedge the
                # frontend and, transitively, this send.
                self._drain_replies()
        return correlations

    # -- the world loop -------------------------------------------------------

    def pump(self) -> int:
        """One router round: drain replies, police processes, cadence."""
        self.clock.advance(self.tick_ms)
        with self.metrics.time_stage("engine_collect_ms"):
            handled = self._drain_replies()
            self.supervisor.poll(0.0)
        for job in self._backfills:
            handled += job.step()
        self._truncate_durable_logs()
        self._raise_on_errors()
        self._respawn_dead_frontends()
        if handled == 0:
            # Nothing moved: block briefly on reply traffic instead of
            # spinning — the router must yield the core to its children.
            with self.metrics.time_stage("engine_collect_ms"):
                multiprocessing.connection.wait(
                    [handle.conn for handle in self._frontends.values()], 0.01
                )
                handled += self._drain_replies()
        return handled

    def run_until_quiet(self, max_rounds: int = 20000, quiet_rounds: int = 3) -> int:
        """Pump until no replies move and no request is pending."""
        total = 0
        quiet = 0
        busy_backfill = any(not job.done for job in self._backfills)
        for _ in range(max_rounds):
            handled = self.pump()
            total += handled
            if busy_backfill:
                busy_backfill = any(not job.done for job in self._backfills)
            if handled == 0 and not self.pending and not busy_backfill:
                quiet += 1
                if quiet >= quiet_rounds:
                    return total
            else:
                quiet = 0
        return total

    def drain(self, timeout: float = 30.0) -> None:
        """Quiesce the data plane: every frontend dispatches its backlog
        and waits out its outstanding batches before acking.

        Recovery-aware: a frontend that is mid-replay after a worker
        crash acks only once the replay finished, and a frontend that
        dies while draining is respawned and re-asked.
        """
        request_id = self._next_drain
        self._next_drain += 1
        asked: dict[str, int] = {}
        for frontend_id, handle in self._frontends.items():
            asked[frontend_id] = handle.restarts
            try:
                handle.conn.send_bytes(wire.encode(wire.DrainRequest(request_id)))
            except OSError:
                pass  # respawn detected below; re-asked then
        deadline = self._time.deadline(timeout)
        while True:
            waiting = [
                frontend_id
                for frontend_id in self._frontends
                if (request_id, frontend_id) not in self._drain_acks
            ]
            if not waiting:
                break
            if deadline.expired():
                raise EngineError(f"frontends did not drain: {sorted(waiting)}")
            self.pump()
            for frontend_id in waiting:
                handle = self._frontends[frontend_id]
                if handle.restarts != asked[frontend_id]:
                    asked[frontend_id] = handle.restarts
                    try:
                        handle.conn.send_bytes(
                            wire.encode(wire.DrainRequest(request_id))
                        )
                    except OSError:
                        pass
        self._drain_acks = {
            ack for ack in self._drain_acks if ack[0] != request_id
        }

    def _truncate_durable_logs(self) -> None:
        """Checkpoint-aware retention, fanned out to the log owners.

        Whenever the (persistent) checkpoint store advanced, each
        frontend is told the stored offsets of its owned tasks and
        deletes every segment wholly below them — the on-disk footprint
        stays bounded by the segments above the minimum checkpoint.
        """
        if self.durable_dir is None:
            return
        store = self.supervisor.checkpoints
        if store.stored == self._truncated_at:
            return
        self._truncated_at = store.stored
        offsets = store.offsets()
        for handle in self._frontends.values():
            owned = tuple(
                (tp, offsets[tp])
                for tp in sorted(handle.owned, key=str)
                if offsets.get(tp, 0) > 0
            )
            if not owned:
                continue
            try:
                handle.conn.send_bytes(wire.encode(wire.TruncateLogs(owned)))
            except OSError:
                pass  # dead frontend; its respawn reopens truncated logs

    def _drain_replies(self) -> int:
        handled = 0
        for handle in self._frontends.values():
            conn = handle.conn
            try:
                while conn.poll(0):
                    handled += self._on_frontend_msg(
                        handle, wire.decode(conn.recv_bytes())
                    )
            except (EOFError, OSError):
                continue  # dead frontend; respawned by the next pump
        return handled

    def _on_frontend_msg(self, handle: FrontendHandle, msg: object) -> int:
        if isinstance(msg, wire.ReplyBatch):
            for correlation_id, topic, results in msg.replies:
                self._deliver(correlation_id, topic, results)
            self.metrics.counter_add(
                "router_replies_merged_total",
                len(msg.replies),
                label=handle.frontend_id,
            )
            if msg.stats is not None:
                self._frontend_bundles[handle.frontend_id] = msg.stats
            for tp, offset in msg.watermarks:
                if offset > self._watermarks.get(tp, 0):
                    self._watermarks[tp] = offset
            for worker_id, records, replies in msg.processed:
                self.supervisor.note_processed(worker_id, records, replies)
            if msg.durable_seq > handle.durable_seq:
                # The frontend's consistent cut covers these frames:
                # their appends are fsynced, so the journal's write-
                # ahead copies are dead weight. Control frames stay —
                # catalogue and routes live only in frontend memory.
                handle.durable_seq = msg.durable_seq
                handle.journal = [
                    entry
                    for entry in handle.journal
                    if entry[0] < 0 or entry[0] >= msg.durable_seq
                ]
            return len(msg.replies)
        if isinstance(msg, wire.DrainAck):
            self._drain_acks.add((msg.request_id, handle.frontend_id))
            for tp, offset in msg.watermarks:
                if offset > self._watermarks.get(tp, 0):
                    self._watermarks[tp] = offset
            return 1
        if isinstance(msg, wire.BackfillRecords):
            self._read_pages[(msg.tp, msg.begin)] = msg
            return 1
        if isinstance(msg, wire.WorkerError):
            self.frontend_errors.append(msg.message)
            return 0
        raise EngineError(f"unexpected frontend frame: {type(msg).__name__}")

    def _deliver(
        self, correlation_id: int, topic: str, results: dict | None
    ) -> None:
        """Fan one task reply into its pending request, topic-deduped.

        Replayed replies (worker restarts, frontend journal replays) may
        repeat a topic that already answered; counting topics — not raw
        replies — keeps the fan-in exact for multi-partitioner streams.
        """
        request = self.pending.get(correlation_id)
        if request is None or results is None or topic in request.replied:
            return
        request.replied.add(topic)
        for metric_id, values in results.items():
            request.results[metric_id] = values
        if len(request.replied) < request.expected:
            return
        del self.pending[correlation_id]
        self.completed[correlation_id] = Reply(
            event=request.event,
            stream=request.stream,
            results=request.results,
            latency_ms=self.clock.now() - request.sent_at_ms,
        )

    def _raise_on_errors(self) -> None:
        if self.supervisor.worker_errors:
            raise EngineError(
                "shard worker failed:\n" + self.supervisor.worker_errors[-1]
            )
        if self.frontend_errors:
            raise EngineError(
                "shard frontend failed:\n" + self.frontend_errors[-1]
            )

    # -- rebalance / recovery -------------------------------------------------

    def _rebalance(self) -> None:
        """(Re)shard tasks over workers *and* frontends, stickily.

        Worker-side moves get their checkpoints shipped to the new owner
        first (control pipes are drained before data sockets, so the
        restore always lands before the task's next batch); the per-task
        seek offsets then travel to the owning frontends inside
        ``FrontendAssign``. Journal copies are seek-stripped: a journal
        replay must not rewind tasks to offsets that were only ever
        meaningful at the moment of this rebalance.
        """
        tasks = self._event_tasks()
        if not tasks:
            return
        previous_worker = {
            worker_id: set(handle.assigned)
            for worker_id, handle in self.supervisor.handles.items()
        }
        worker_map = self.supervisor.assign(tasks)
        owner_of: dict[TopicPartition, str] = {}
        seeks: dict[TopicPartition, int] = {}
        for worker_id, owned in worker_map.items():
            for tp in owned:
                owner_of[tp] = worker_id
            for tp in owned - previous_worker.get(worker_id, set()):
                if self.supervisor.ship_checkpoint(worker_id, tp):
                    seeks[tp] = self.supervisor.checkpoints.offset(tp)
                else:
                    seeks[tp] = 0
        previous_fe = {
            frontend_id: set(handle.owned)
            for frontend_id, handle in self._frontends.items()
        }
        assignment = self.frontend_strategy.assign(
            tasks,
            [
                ProcessorInfo(frontend_id, frontend_id)
                for frontend_id in self._frontends
            ],
            PreviousState(active=previous_fe),
        )
        # Frontend ownership is append-only: a task, once owned, NEVER
        # moves — the owner hosts the task's only copy of its partition
        # log and replied watermark, so a move would strand both (the
        # new owner's log restarts at offset 0 and the worker would
        # treat the re-appended tail as replays: silently dropped
        # events). The strategy only places tasks it has never placed
        # before; the frontend count is fixed for the cluster's
        # lifetime, so pinning costs nothing but balance on topic
        # additions.
        placed: dict[TopicPartition, str] = {}
        for frontend_id in self._frontends:
            for tp in assignment.active.get(frontend_id, set()):
                placed[tp] = frontend_id
        for tp in tasks:
            if tp not in self._fe_owner:
                self._fe_owner[tp] = placed[tp]
        for frontend_id, handle in self._frontends.items():
            owned = {
                tp for tp, owner in self._fe_owner.items()
                if owner == frontend_id
            }
            handle.owned = owned
            routes = tuple(
                (tp, owner_of[tp], self.supervisor.worker_addr(owner_of[tp]))
                for tp in sorted(owned, key=str)
            )
            fe_seeks = tuple(
                (tp, seeks[tp]) for tp, _, _ in routes if tp in seeks
            )
            handle.journal.append(
                (-1, wire.encode(wire.FrontendAssign(routes, ())))
            )
            try:
                handle.conn.send_bytes(
                    wire.encode(wire.FrontendAssign(routes, fe_seeks))
                )
            except OSError:
                pass  # dead frontend; the respawn replays the journal
        for job in self._backfills:
            job.reset()
        self.rebalance_count += 1

    def _on_worker_restart(
        self, worker_id: str, tasks: set[TopicPartition]
    ) -> None:
        """Announce a restarted worker to every frontend owning its tasks.

        The supervisor already replayed the control log and shipped the
        stored checkpoints into the fresh process; each frontend then
        reconnects to the worker's (stable) address, rewinds the listed
        tasks to their checkpointed offsets and replays the tail with
        the replied watermark suppressing duplicates.
        """
        addr = self.supervisor.worker_addr(worker_id)
        if addr is None:
            return
        offsets = self.supervisor.checkpoints.offset
        for handle in self._frontends.values():
            # Announce to every frontend, even one with no task of the
            # restarted worker right now: the announcement is what
            # lifts a crash quarantine, and a later rebalance may route
            # this worker's address back to any frontend.
            relevant = sorted(handle.owned & tasks, key=str)
            msg = wire.WorkerRestarted(
                worker_id, addr, tuple((tp, offsets(tp)) for tp in relevant)
            )
            try:
                handle.conn.send_bytes(wire.encode(msg))
            except OSError:
                pass  # dead frontend; the respawn re-seeks via journal + seeks
        for job in self._backfills:
            job.reset(tasks)

    def _respawn_dead_frontends(self) -> None:
        for handle in self._frontends.values():
            if not handle.alive:
                self._respawn_frontend(handle)

    def _respawn_frontend(self, handle: FrontendHandle) -> None:
        """Crash recovery for a frontend: respawn + journal replay.

        Buffered frames from the dead incarnation are salvaged first
        (their replies and watermarks are valid). The fresh process gets
        ``RestoreWatermarks`` (so replayed dispatch suppresses settled
        replies and skips straight to the unreplied tail) and then the
        journal verbatim, rebuilding its partition logs with identical
        offsets. Workers replay-skip everything their state already
        holds, so the only client-visible effect is that replies which
        were in flight at the crash complete read-only.
        """
        try:
            while handle.conn.poll(0):
                self._on_frontend_msg(handle, wire.decode(handle.conn.recv_bytes()))
        except (EOFError, OSError):
            pass
        handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        fresh = self._spawn_frontend(handle.frontend_id)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.restarts += 1
        self.metrics.counter_add(
            "router_frontend_restarts_total", label=handle.frontend_id
        )
        watermarks = tuple(
            (tp, self._watermarks.get(tp, 0))
            for tp in sorted(handle.owned, key=str)
        )
        # A task whose worker frontier fell below the replied watermark
        # (a worker restarted from a stale checkpoint, and this frontend
        # died before replaying its tail) must re-ship from the frontier
        # or the gap never reaches the fresh worker's state. Ask the
        # workers for their actual frontiers so only genuinely-behind
        # tasks replay. A task absent from the acks has no processor
        # anywhere — a restarted worker still waiting for its replay —
        # so its frontier is the checkpoint-store offset (zero when no
        # checkpoint exists: full re-ship, which is exactly what a
        # stateless worker needs).
        try:
            offsets = self.supervisor.request_checkpoints()
        except EngineError:
            offsets = {}
        store_offset = self.supervisor.checkpoints.offset
        frontiers = {
            tp: offsets.get(tp, store_offset(tp)) for tp in handle.owned
        }
        seeks = tuple(
            (tp, frontiers[tp])
            for tp in sorted(handle.owned, key=str)
            if frontiers[tp] < self._watermarks.get(tp, 0)
        )
        # ingest_base aligns the fresh engine's frame numbering with the
        # pruned journal: retained ingest frames start exactly at the
        # durable cut the frontend last reported (0 when in-memory).
        handle.conn.send_bytes(
            wire.encode(
                wire.RestoreWatermarks(watermarks, seeks, handle.durable_seq)
            )
        )
        for _seq, frame in handle.journal:
            handle.conn.send_bytes(frame)
            # Keep the reply direction drained mid-replay (same
            # wedge-avoidance as the ingest path).
            self._drain_replies()

    # -- introspection / shutdown ---------------------------------------------

    def total_messages_processed(self) -> int:
        """Messages processed across workers (replays included)."""
        return self.supervisor.total_messages_processed()

    def checkpoint_offsets(self) -> dict[TopicPartition, int]:
        """Consumed offsets per task, straight from the workers."""
        return self.supervisor.request_checkpoints()

    def checkpoint_now(self) -> dict[TopicPartition, int]:
        """Take a full checkpoint of every task, synchronously."""
        return self.supervisor.request_checkpoints(with_state=True)

    def stats(self) -> dict[str, dict[str, dict[str, int]]]:
        """Merged cluster counters: per-worker and per-frontend.

        Worker counters live at the supervisor (fed by
        ``note_processed`` in this mode); frontend counters live here.
        Both halves are thin compat views over the telemetry registry
        (legacy key names, ``router_*``/``supervisor_*`` counters — see
        docs/OBSERVABILITY.md). The invariants tests assert: summed
        ``events_routed`` equals events accepted, summed worker
        ``processed`` equals records processed (replays included).
        """
        metrics = self.metrics
        return {
            "workers": self.supervisor.stats(),
            "frontends": {
                frontend_id: {
                    "events_routed": metrics.counter_value(
                        "router_events_routed_total", frontend_id
                    ),
                    "replies_merged": metrics.counter_value(
                        "router_replies_merged_total", frontend_id
                    ),
                    "restarts": handle.restarts,
                }
                for frontend_id, handle in self._frontends.items()
            },
        }

    def telemetry(self) -> dict:
        """One merged, stable-schema telemetry snapshot of the cluster.

        Router and supervisor share a registry; each frontend ships a
        bundle of its own snapshot plus the latest worker snapshots it
        absorbed, piggybacked on its reply traffic. See
        docs/OBSERVABILITY.md for the schema and the metric catalog.
        """
        snapshots = [self.metrics.snapshot()]
        for blob in self.supervisor.child_snapshots():
            try:
                snapshots.append(decode_snapshot(blob))
            except Exception:
                continue  # observation only: a torn snapshot is skipped
        for bundle in self._frontend_bundles.values():
            try:
                snapshots.extend(decode_bundle(bundle))
            except Exception:
                continue  # torn bundle: skipped, never raises
        return merge_snapshots(snapshots)

    def close(self, drain: bool = True, drain_timeout: float = 10.0) -> None:
        """Stop every frontend and worker process; idempotent.

        Drain-before-close: with ``drain=True`` (the default) the
        router first completes outstanding fan-ins — both direct
        ``send``/``send_batch`` correlations and queued front-door
        submissions — so a server shutting down mid-flight answers
        every accepted request before its processes go away. The drain
        is bounded: ``drain_timeout`` caps it overall, and a stall (no
        progress for ~50 idle rounds, e.g. after an unrecovered crash)
        abandons it early rather than hanging shutdown. A child error
        raised mid-drain likewise downgrades to an immediate teardown —
        close() must always release the process tree, so the supervisor
        shutdown and socket/shm cleanup run even if stopping the
        frontends throws.

        Thread-safe and idempotent: concurrent calls race on one lock
        and every call after the first returns immediately. The caller
        must stop any thread running :meth:`service_step` first — close
        drains on the calling thread.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if drain:
            deadline = self._time.deadline(drain_timeout)
            stalled = 0
            try:
                while (
                    self.pending
                    or self._service_pending
                    or self._submissions.qsize() > 0
                ):
                    if deadline.expired() or stalled > 50:
                        break
                    stalled = 0 if self.service_step() else stalled + 1
            except EngineError:
                pass  # dead child mid-drain: fall through to teardown
        try:
            for handle in self._frontends.values():
                try:
                    handle.conn.send_bytes(wire.encode(wire.Shutdown()))
                except (OSError, ValueError):
                    pass
            for handle in self._frontends.values():
                handle.process.join(timeout=2.0)
                if handle.alive:
                    handle.process.kill()
                    handle.process.join(timeout=2.0)
                try:
                    handle.conn.close()
                except OSError:
                    pass
        finally:
            self.supervisor.shutdown()
            shutil.rmtree(self._socket_dir, ignore_errors=True)
            if self.transport == "shm":
                shm.sweep(self._shm_prefix)

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
