"""Shared-memory ring buffers — the zero-syscall shard data plane.

The AF_UNIX / pipe transport pays four taxes per ``WorkBatch``: a
length-prefixed frame copy into the kernel, a wakeup, a copy back out,
and the per-event serde on both sides. This module removes the first
three: payload bytes move through a fixed-slot single-producer /
single-consumer ring living in a :mod:`multiprocessing.shared_memory`
segment, and the existing socket/pipe carries only a one-byte
*doorbell* per publish round (eventfd-style readiness signalling — the
consumer sleeps in ``connection.wait`` exactly as before and never
polls the ring).

Layout (one segment per direction per link)::

    header (64 bytes, little-endian)
      0   u32  magic          "RGSM"
      4   u32  slot_count
      8   u32  slot_bytes
      16  u64  tail           slots published   (producer-owned)
      24  u64  head           slots consumed    (consumer-owned)
      32  u64  producer_hb    monotonic-ns heartbeat
      40  u64  consumer_hb    monotonic-ns heartbeat
      48  u8   producer_closed
      49  u8   consumer_closed
    data  (slot_count * slot_bytes)
      frame := slot-aligned [ u64 seq | u32 len | u32 crc | payload ]
      a frame spans ceil((16+len)/slot_bytes) consecutive slots and
      wraps at the byte level past the end of the data region

``seq`` is the slot cursor the frame was published at and ``crc`` is a
CRC-32 over the payload — together they make a torn or misaligned read
loud instead of silent. The producer *blocks* (bounded backpressure,
never drops) while the ring lacks room, aborting only when the consumer
marked itself closed or its heartbeat went stale — the shm analogue of
``ECONNRESET``, surfaced as :class:`ShmPeerDead` so callers quarantine
the link exactly like a dead socket.

Lifecycle is explicitly managed: both ``create`` and ``attach``
deregister the segment from the ``multiprocessing`` resource tracker
(which would otherwise race our unlinks and warn at exit), the creating
side unlinks in ``close(unlink=True)``, and :func:`sweep` removes any
segment a SIGKILL'd process left behind (``tools/shm_gate.py`` is the
CI gate asserting nothing survives).
"""

from __future__ import annotations

import os
import struct
import uuid
import zlib
from multiprocessing import resource_tracker, shared_memory

from repro.common.timesource import TimeSource, resolve_time_source

try:  # CPython's POSIX shm primitive (Linux/macOS)
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX fallback
    _posixshmem = None

MAGIC = 0x5247534D  # "RGSM"
HEADER_BYTES = 64
FRAME_HEADER = struct.Struct("<QII")  # seq, payload length, payload crc32
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_OFF_MAGIC = 0
_OFF_SLOT_COUNT = 4
_OFF_SLOT_BYTES = 8
_OFF_TAIL = 16
_OFF_HEAD = 24
_OFF_PRODUCER_HB = 32
_OFF_CONSUMER_HB = 40
_OFF_PRODUCER_CLOSED = 48
_OFF_CONSUMER_CLOSED = 49

#: Default geometry: 256 x 4 KiB = 1 MiB of in-flight payload per
#: direction — an order of magnitude above what the dispatcher credit
#: scheme (max_outstanding batches) ever keeps in flight.
DEFAULT_SLOT_COUNT = 256
DEFAULT_SLOT_BYTES = 4096

#: How long a peer's heartbeat may lag before a *blocked producer*
#: declares it dead. Generous: heartbeats advance on every ring
#: operation and every event-loop wakeup, so a healthy-but-busy peer
#: beats orders of magnitude faster than this.
DEFAULT_STALE_AFTER = 10.0


#: Environment override for the default shard transport; mirrors
#: ``RAILGUN_DURABLE_DIR``.
TRANSPORT_ENV = "RAILGUN_TRANSPORT"


def resolve_transport(explicit: str | None) -> str:
    """The cluster's data-plane transport: the explicit argument, or
    ``$RAILGUN_TRANSPORT`` when set, or ``"socket"``.

    The environment hook is how CI runs the whole shard suite over
    shared memory without touching each test (mirroring how
    ``RAILGUN_DURABLE_DIR`` runs it durably); an explicit argument —
    including an explicit ``"socket"`` — always wins.
    """
    if explicit is not None:
        return explicit
    return os.environ.get(TRANSPORT_ENV) or "socket"


class ShmError(RuntimeError):
    """Ring invariant violated (corrupt frame, oversized frame, timeout)."""


class ShmPeerDead(ShmError):
    """The other side of the ring closed or stopped heartbeating."""


def ring_name(prefix: str) -> str:
    """A fresh collision-free segment name under ``prefix``."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Deregister from the resource tracker: this module owns lifecycle.

    POSIX ``SharedMemory`` registers unconditionally — attachers too —
    so without this, every exiting process would race to unlink rings
    still in use and warn about "leaked" segments we deleted on purpose.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker may already be gone
        pass


def _unlink_quiet(shm: shared_memory.SharedMemory) -> None:
    """Remove the segment name without another tracker round-trip.

    ``SharedMemory.unlink`` sends its own unregister message; combined
    with :func:`_untrack` that would double-unregister and make the
    tracker print ``KeyError`` tracebacks at exit.
    """
    try:
        if _posixshmem is not None:
            _posixshmem.shm_unlink(shm._name)
        else:  # pragma: no cover - non-POSIX fallback
            shm.unlink()
    except FileNotFoundError:
        pass  # the peer's teardown (or a sweep) got there first


class ShmRing:
    """One direction of one link: a fixed-slot SPSC byte ring.

    ``side`` names which end *this process* is (``"producer"`` or
    ``"consumer"``); it selects which heartbeat/closed fields are ours
    to write. Exactly one process creates the segment (and later
    unlinks it); the peer attaches by name.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        side: str,
        owner: bool,
        time_source: TimeSource | None = None,
    ) -> None:
        if side not in ("producer", "consumer"):
            raise ValueError(f"bad ring side: {side!r}")
        # Heartbeats are *cross-process* comparisons, so both sides must
        # read the same timeline: SystemTimeSource scaled by the shared
        # $RAILGUN_TIME_SCALE env (inherited at spawn) satisfies that.
        self._time = resolve_time_source(time_source)
        self._shm = shm
        self._buf = shm.buf
        self.side = side
        self.owner = owner
        self.name = shm.name
        magic = _U32.unpack_from(self._buf, _OFF_MAGIC)[0]
        if magic != MAGIC:
            raise ShmError(f"segment {shm.name!r} is not a railgun ring")
        self.slot_count = _U32.unpack_from(self._buf, _OFF_SLOT_COUNT)[0]
        self.slot_bytes = _U32.unpack_from(self._buf, _OFF_SLOT_BYTES)[0]
        self._size = self.slot_count * self.slot_bytes
        self._closed = False
        self.beat()

    # -- construction ----------------------------------------------------------

    @classmethod
    def create(
        cls,
        side: str,
        *,
        slot_count: int = DEFAULT_SLOT_COUNT,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        name: str | None = None,
        time_source: TimeSource | None = None,
    ) -> "ShmRing":
        if slot_bytes < FRAME_HEADER.size:
            raise ValueError("slot_bytes must hold at least a frame header")
        if slot_count < 2:
            raise ValueError("ring needs at least two slots")
        shm = shared_memory.SharedMemory(
            name=name if name is not None else ring_name("rgshm"),
            create=True,
            size=HEADER_BYTES + slot_count * slot_bytes,
        )
        _untrack(shm)
        _U32.pack_into(shm.buf, _OFF_MAGIC, MAGIC)
        _U32.pack_into(shm.buf, _OFF_SLOT_COUNT, slot_count)
        _U32.pack_into(shm.buf, _OFF_SLOT_BYTES, slot_bytes)
        return cls(shm, side, owner=True, time_source=time_source)

    @classmethod
    def attach(
        cls, name: str, side: str, time_source: TimeSource | None = None
    ) -> "ShmRing":
        shm = shared_memory.SharedMemory(name=name, create=False)
        _untrack(shm)
        return cls(shm, side, owner=False, time_source=time_source)

    # -- heartbeat / liveness --------------------------------------------------

    def beat(self) -> None:
        """Stamp this side's heartbeat with the (system-wide) monotonic clock."""
        offset = (
            _OFF_PRODUCER_HB if self.side == "producer" else _OFF_CONSUMER_HB
        )
        _U64.pack_into(self._buf, offset, self._time.monotonic_ns())

    def peer_heartbeat_ns(self) -> int:
        offset = (
            _OFF_CONSUMER_HB if self.side == "producer" else _OFF_PRODUCER_HB
        )
        return _U64.unpack_from(self._buf, offset)[0]

    def peer_closed(self) -> bool:
        offset = (
            _OFF_CONSUMER_CLOSED
            if self.side == "producer"
            else _OFF_PRODUCER_CLOSED
        )
        return self._buf[offset] != 0

    def peer_stale(self, stale_after: float, now_ns: int | None = None) -> bool:
        """True when the peer attached but stopped beating for ``stale_after``s.

        A peer that never attached (heartbeat still zero) is *not* stale
        — link setup has its own timeout; staleness is about an attached
        peer that silently died (SIGKILL skips the closed flag).
        """
        hb = self.peer_heartbeat_ns()
        if hb == 0:
            return False
        if now_ns is None:
            now_ns = self._time.monotonic_ns()
        return now_ns - hb > int(stale_after * 1e9)

    # -- producer side ---------------------------------------------------------

    def send(
        self,
        payload: bytes,
        *,
        timeout: float | None = None,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        """Publish one frame; **block** (never drop) while the ring is full.

        Raises :class:`ShmPeerDead` when the consumer closed its side or
        its heartbeat went stale mid-wait, and :class:`ShmError` on
        ``timeout`` — both mean "treat this link like a dead socket".
        """
        need = (FRAME_HEADER.size + len(payload) + self.slot_bytes - 1) // (
            self.slot_bytes
        )
        if need > self.slot_count:
            raise ShmError(
                f"frame of {len(payload)} bytes exceeds ring capacity "
                f"({self.slot_count}x{self.slot_bytes})"
            )
        buf = self._buf
        tail = _U64.unpack_from(buf, _OFF_TAIL)[0]
        deadline = self._time.deadline(timeout)
        pause = 20e-6
        while True:
            if self.peer_closed():
                raise ShmPeerDead(f"consumer of ring {self.name} is closed")
            head = _U64.unpack_from(buf, _OFF_HEAD)[0]
            if self.slot_count - (tail - head) >= need:
                break
            if self.peer_stale(stale_after):
                raise ShmPeerDead(
                    f"consumer of ring {self.name} stopped heartbeating"
                )
            if deadline.expired():
                raise ShmError(f"ring {self.name} full for {timeout}s")
            self.beat()
            self._time.sleep(pause)
            pause = min(pause * 2, 1e-3)
        frame = FRAME_HEADER.pack(
            tail, len(payload), zlib.crc32(payload)
        ) + payload
        pos = (tail % self.slot_count) * self.slot_bytes
        end = pos + len(frame)
        if end <= self._size:
            buf[HEADER_BYTES + pos : HEADER_BYTES + end] = frame
        else:
            split = self._size - pos
            buf[HEADER_BYTES + pos : HEADER_BYTES + self._size] = frame[:split]
            buf[HEADER_BYTES : HEADER_BYTES + len(frame) - split] = frame[split:]
        # Publish *after* the payload bytes: the consumer only looks past
        # its head once tail moves, and the CRC catches reordering on
        # weakly-ordered hosts.
        _U64.pack_into(buf, _OFF_TAIL, tail + need)
        _U64.pack_into(buf, _OFF_PRODUCER_HB, self._time.monotonic_ns())

    # -- consumer side ---------------------------------------------------------

    def try_recv(self) -> bytes | None:
        """One frame, or ``None`` when the ring is empty. Never blocks."""
        buf = self._buf
        head = _U64.unpack_from(buf, _OFF_HEAD)[0]
        tail = _U64.unpack_from(buf, _OFF_TAIL)[0]
        if head == tail:
            return None
        pos = (head % self.slot_count) * self.slot_bytes
        seq, length, crc = FRAME_HEADER.unpack_from(buf, HEADER_BYTES + pos)
        if seq != head:
            raise ShmError(
                f"ring {self.name}: frame seq {seq} at slot cursor {head}"
            )
        start = pos + FRAME_HEADER.size
        end = start + length
        if end <= self._size:
            payload = bytes(buf[HEADER_BYTES + start : HEADER_BYTES + end])
        else:
            split = self._size - start
            payload = bytes(
                buf[HEADER_BYTES + start : HEADER_BYTES + self._size]
            ) + bytes(buf[HEADER_BYTES : HEADER_BYTES + end - self._size])
        if zlib.crc32(payload) != crc:
            raise ShmError(f"ring {self.name}: CRC mismatch at cursor {head}")
        need = (FRAME_HEADER.size + length + self.slot_bytes - 1) // (
            self.slot_bytes
        )
        _U64.pack_into(buf, _OFF_HEAD, head + need)
        _U64.pack_into(buf, _OFF_CONSUMER_HB, self._time.monotonic_ns())
        return payload

    def drain(self) -> list[bytes]:
        """Every complete frame currently published."""
        frames: list[bytes] = []
        while True:
            payload = self.try_recv()
            if payload is None:
                return frames
            frames.append(payload)

    # -- teardown --------------------------------------------------------------

    def close(self, *, unlink: bool | None = None) -> None:
        """Mark this side closed and detach; the owner also unlinks.

        Idempotent: links get torn down from both the engine loop and
        crash/restart paths.
        """
        if self._closed:
            return
        self._closed = True
        if unlink is None:
            unlink = self.owner
        offset = (
            _OFF_PRODUCER_CLOSED
            if self.side == "producer"
            else _OFF_CONSUMER_CLOSED
        )
        try:
            self._buf[offset] = 1
        except (TypeError, ValueError):  # pragma: no cover - buffer gone
            pass
        self._buf = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - exported view still live
            pass
        if unlink:
            _unlink_quiet(self._shm)


def sweep(prefix: str) -> list[str]:
    """Best-effort unlink of every segment named ``prefix``*.

    The backstop for processes that died too hard to run teardown
    (``Crash`` fault injection, SIGKILL): cluster ``close()`` sweeps its
    own name prefix so no orphan outlives the cluster.
    """
    removed: list[str] = []
    shm_dir = "/dev/shm"
    if os.path.isdir(shm_dir):
        for entry in os.listdir(shm_dir):
            if entry.startswith(prefix):
                try:
                    os.unlink(os.path.join(shm_dir, entry))
                except OSError:
                    continue
                removed.append(entry)
    return removed


def orphans(prefix: str = "rgshm") -> list[str]:
    """Segments currently on ``/dev/shm`` under ``prefix`` (for the CI gate)."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    return sorted(e for e in os.listdir(shm_dir) if e.startswith(prefix))
