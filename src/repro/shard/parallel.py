"""The process-parallel Railgun cluster with a single coordinator.

``ParallelCluster`` preserves the single-process :class:`RailgunCluster`
client API — same DDL calls, same ``send``/``send_batch``, same
:class:`~repro.engine.cluster.Reply` objects, byte-identical reply
values — while the back-end work runs in shard worker processes. The
coordinator process keeps the roles the paper gives a node's front
layer: it hosts the frontend (fan-out + fan-in), polls the bus through
one :class:`~repro.messaging.consumer.PartitionView` per worker, ships
contiguous offset runs across the pipe as the unit of work (the batched
``poll_batches`` → ``process_batch`` path), publishes the returned
replies to the reply topic and commits offsets only once their replies
landed.

This is the ``frontends=1`` topology of ``create_cluster("process")``.
When the coordinator's own fan-out/merge loop becomes the ceiling,
``frontends=N`` swaps this facade for the sharded-frontend
:class:`~repro.shard.router.ClusterRouter`, which splits exactly these
coordinator roles across N frontend processes (see
``docs/ARCHITECTURE.md``).

Determinism guarantees: partitions are sharded with the Figure 7 sticky
strategy, each partition's records are processed in log order by exactly
one worker, and every reply value is produced by the same
``TaskProcessor.process_batch`` code the single-process engine runs — so
replies and aggregate stats match the cooperative engine exactly, no
matter how work interleaves across processes.

Recovery is checkpoint-shipped (the paper's MAD contract needs bounded
replay, not replay-from-genesis): workers ship task checkpoints to the
supervisor on a configurable cadence (``checkpoint_every`` records),
and every recovery path starts from the latest stored checkpoint. After
a worker crash the supervisor restarts it, replays the control log,
ships each owned task's checkpoint into the fresh process, and the
cluster seeks the partition to the **checkpointed offset** — only the
uncheckpointed tail replays, with the committed watermark suppressing
every reply the client already saw. Rebalances get worker-to-worker
state handoff the same way: the new owner restores from the
supervisor's store and replays only the tail.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Iterable, Mapping

from repro.common.clock import ManualClock
from repro.common.errors import EngineError
from repro.common.timesource import TimeSource, resolve_time_source
from repro.engine.catalog import (
    GLOBAL_PARTITIONER,
    OPERATIONS_TOPIC,
    REPLY_TOPIC_PREFIX,
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    topic_name,
)
from repro.engine.cluster import (
    Reply,
    _normalize_fields,
    build_metric_def,
    build_stream_def,
    validate_new_partitioner,
)
from repro.engine.envelope import EventEnvelope, ReplyEnvelope
from repro.engine.node import RailgunNode
from repro.engine.processor import ACTIVE_GROUP, UnitConfig
from repro.engine.task import TaskProcessor
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.consumer import PartitionView
from repro.messaging.durable import DurableBus, resolve_durable_dir
from repro.messaging.log import TopicPartition
from repro.messaging.producer import Producer
from repro.replay.asof import AsOfResult, as_of_values
from repro.shard import wire
from repro.shard.backfill import ShardBackfill
from repro.shard.shm import resolve_transport
from repro.shard.supervisor import ShardSupervisor
from repro.telemetry import MetricsRegistry, decode_snapshot, merge_snapshots


def op_to_wire(op: object) -> object:
    """The control-plane frame replicating one catalogue DDL op.

    Shared by the live DDL path (:meth:`ParallelCluster._publish_op`)
    and the durable reopen path (which replays the operations log into
    freshly spawned workers), so the two replication routes cannot
    drift apart.
    """
    if isinstance(op, CreateStreamOp):
        return wire.CreateStream(op.stream)
    if isinstance(op, CreateMetricOp):
        # getattr: ops pickled into durable logs before the activation
        # field existed unpickle without it.
        return wire.CreateMetric(op.metric, getattr(op, "activations", ()))
    if isinstance(op, DeleteMetricOp):
        return wire.DeleteMetric(op.metric_id)
    if isinstance(op, EvolveSchemaOp):
        return wire.EvolveSchema(op.stream, op.new_fields)
    if isinstance(op, AddPartitionerOp):
        return wire.AddPartitioner(op.stream, op.partitioner)
    raise EngineError(f"unknown operation {op!r}")

#: node id of the coordinator-side frontend (mirrors RailgunCluster).
FRONTEND_NODE = "node-0"


class ParallelCluster:
    """N shard worker processes behind a RailgunCluster-compatible facade."""

    def __init__(
        self,
        workers: int = 2,
        unit_config: UnitConfig | None = None,
        tick_ms: int = 1,
        batch_max: int = 256,
        checkpoint_every: int | None = 2048,
        assignment_strategy: object | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        durable_dir: str | None = None,
        durable_fsync: str = "batch",
        transport: str | None = None,
        time_source: TimeSource | None = None,
    ) -> None:
        self._time = resolve_time_source(time_source)
        #: coordinator-side registry, shared with the supervisor so the
        #: whole front layer's accounting lives in one snapshot; the
        #: merged cluster view is :meth:`telemetry`.
        self.metrics = MetricsRegistry("coordinator", time_source=self._time)
        self._span_seq = 0
        self.clock = ManualClock(start_ms=1)
        self.durable_dir = resolve_durable_dir(durable_dir, "parallel")
        if self.durable_dir is not None:
            self.bus = DurableBus(
                os.path.join(self.durable_dir, "bus"), fsync=durable_fsync
            )
        else:
            self.bus = MessageBus()
        self.catalog = Catalog()
        self.tick_ms = tick_ms
        self.batch_max = batch_max
        self.bus.create_topic(OPERATIONS_TOPIC, partitions=1)
        self.bus.create_topic(REPLY_TOPIC_PREFIX + FRONTEND_NODE, partitions=1)
        self._ops_producer = Producer(self.bus, self.clock)
        self._reply_producer = Producer(self.bus, self.clock)
        # The client layer is a frontend-only Railgun node: same fan-out,
        # same reply fan-in, zero processor units in this process.
        self.node = RailgunNode(FRONTEND_NODE, self.bus, None, self.clock, 0)
        self.frontend = self.node.frontend
        self.supervisor = ShardSupervisor(
            workers,
            unit_config=unit_config,
            strategy=assignment_strategy,
            time_source=self._time,
            checkpoint_interval=checkpoint_every,
            mp_context=mp_context,
            checkpoint_dir=(
                os.path.join(self.durable_dir, "checkpoints")
                if self.durable_dir is not None
                else None
            ),
            transport=resolve_transport(transport),
            telemetry=self.metrics,
        )
        self.supervisor.on_restart = self._on_worker_restart
        self._views: dict[str, PartitionView] = {
            worker_id: PartitionView(self.bus, ACTIVE_GROUP)
            for worker_id in self.supervisor.worker_ids()
        }
        #: replied watermark per task: replies below it already reached
        #: the client, so replayed work must not repeat them.
        self._watermarks: dict[TopicPartition, int] = {}
        #: envelopes shipped but not yet replied, keyed by (task, offset).
        self._pending: dict[tuple[TopicPartition, int], EventEnvelope] = {}
        #: checkpoint-store version the logs were last truncated against.
        self._truncated_at = 0
        #: running/finished backfill jobs (kept for status queries).
        self._backfills: list[ShardBackfill] = []
        self.rebalance_count = 0
        self._closed = False
        if self.durable_dir is not None and self.bus.recovered:
            self._recover_from_disk()

    def _recover_from_disk(self) -> None:
        """Coordinator restart: rebuild the world from the durable state.

        The operations log replays into the catalogue and (as control
        frames) into every worker; the replied watermarks come back from
        the bus's committed offsets; the rebalance then ships the
        persisted checkpoint store into the fresh workers and seeks each
        task to its checkpointed offset — replay is bounded by the
        uncheckpointed tail, never the log length.
        """
        ops_tp = TopicPartition(OPERATIONS_TOPIC, 0)
        for message in self.bus.read(ops_tp, 0, self.bus.end_offset(ops_tp)):
            op = message.value
            self.catalog.apply(op)
            self.supervisor.broadcast_control(op_to_wire(op))
        for topic in self._event_topics():
            for tp in self.bus.topic_partitions(topic):
                committed = self.bus.committed_offset(ACTIVE_GROUP, tp)
                if committed:
                    self._watermarks[tp] = committed
        self._rebalance()

    # -- topology -------------------------------------------------------------

    def add_worker(self) -> str:
        """Spawn one more shard worker and rebalance onto it.

        Checkpoints are refreshed first, so tasks that move restore on
        the new worker from up-to-date state and replay nothing.
        """
        self._quiesce()
        self._refresh_checkpoints()
        worker_id = self.supervisor.add_worker()
        self._views[worker_id] = PartitionView(self.bus, ACTIVE_GROUP)
        self._rebalance()
        return worker_id

    def remove_worker(self, worker_id: str) -> None:
        """Retire a worker; its tasks hand their state off via the
        checkpoint store and replay only the (empty, post-quiesce) tail
        on their new owner."""
        self._quiesce()
        self._refresh_checkpoints()
        self.supervisor.remove_worker(worker_id)
        del self._views[worker_id]
        self._rebalance()

    def _refresh_checkpoints(self) -> None:
        """Pull fresh with-state checkpoints before a planned topology
        change; best effort — a crash here falls back to the last stored
        checkpoint plus tail replay."""
        try:
            self.supervisor.request_checkpoints(with_state=True)
        except EngineError:
            pass

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker process (fault injection for tests)."""
        self.supervisor.kill_worker(worker_id)

    def worker_ids(self) -> list[str]:
        """Current shard workers."""
        return self.supervisor.worker_ids()

    # -- DDL ------------------------------------------------------------------

    def create_stream(
        self,
        name: str,
        partitioners: Iterable[str],
        partitions: int = 4,
        schema: object = (),
        with_global_partitioner: bool = False,
    ) -> None:
        """Register a stream: schema + partitioners + topic creation."""
        stream = build_stream_def(
            self.catalog, name, partitioners, partitions, schema,
            with_global_partitioner,
        )
        for partitioner in stream.partitioners:
            count = 1 if partitioner == GLOBAL_PARTITIONER else partitions
            self.bus.create_topic(topic_name(name, partitioner), partitions=count)
        self._publish_op(CreateStreamOp(stream))
        self._rebalance()

    def create_metric(self, query_text: str, backfill: bool = False) -> int:
        """Register a metric from a Figure 4 statement; returns metric id."""
        metric = build_metric_def(self.catalog, query_text, backfill)
        self._publish_op(CreateMetricOp(metric, self._activation_cuts(metric)))
        return metric.metric_id

    def _activation_cuts(self, metric) -> tuple:
        """Each topic task's processed frontier at DDL time — the offset
        a recovery replay must re-activate the metric at (the cut is
        stamped into the op, so the durable reopen path replays it
        identically)."""
        return tuple(
            sorted(
                ((tp, self._watermarks.get(tp, 0))
                 for tp in self.bus.topic_partitions(metric.topic)),
                key=lambda pair: str(pair[0]),
            )
        )

    def delete_metric(self, metric_id: int) -> None:
        """Remove a metric cluster-wide."""
        self._publish_op(DeleteMetricOp(metric_id))

    def evolve_schema(self, stream: str, new_fields: object) -> None:
        """Append fields to a stream schema (old chunks stay readable)."""
        self._publish_op(EvolveSchemaOp(stream, _normalize_fields(new_fields)))

    def add_partitioner(self, stream: str, partitioner: str) -> None:
        """Add a top-level partitioner after stream creation (§4)."""
        stream_def = validate_new_partitioner(self.catalog, stream, partitioner)
        if stream_def is None:
            return
        count = 1 if partitioner == GLOBAL_PARTITIONER else stream_def.partitions
        self.bus.create_topic(topic_name(stream, partitioner), partitions=count)
        self._publish_op(AddPartitionerOp(stream, partitioner))
        self._rebalance()

    def _publish_op(self, op: object) -> None:
        """Apply one DDL op locally, log it, replicate it to workers.

        The same :func:`op_to_wire` mapping serves the durable reopen
        path, so the live broadcast and the operations-log replay can
        never drift apart.
        """
        self.catalog.apply(op)
        self._ops_producer.send(OPERATIONS_TOPIC, key=None, value=op)
        self.supervisor.broadcast_control(op_to_wire(op))

    def _event_topics(self) -> list[str]:
        return sorted(
            topic
            for stream in self.catalog.streams.values()
            for topic in stream.topics()
        )

    # -- replay & backfill ----------------------------------------------------

    def backfill_metric(self, query_text: str) -> int:
        """Define a metric *after the fact* and materialize it from the logs.

        The metric id is reserved immediately; a background
        :class:`~repro.shard.backfill.ShardBackfill` job (stepped from
        :meth:`pump`, so ingest never pauses) replays each partition log
        through a coordinator-side shadow and ships the exported state
        to the owning workers, which splice it at exact cut offsets.
        Only on completion does the ``CreateMetricOp`` reach the
        operations log and the worker control log — an incomplete
        backfill does not survive a coordinator restart and must be
        re-issued. Use :meth:`backfill_status` to observe completion.
        """
        metric = build_metric_def(self.catalog, query_text)
        self.catalog.apply(CreateMetricOp(metric))
        self._backfills.append(ShardBackfill(self, metric))
        return metric.metric_id

    def backfill_status(self, metric_id: int) -> str:
        """``"running"``, ``"complete"``, or ``"unknown"`` for an id."""
        for job in self._backfills:
            if job.metric.metric_id == metric_id:
                return "complete" if job.done else "running"
        return "unknown"

    def metric_values(self, metric_id: int) -> dict[tuple, dict[str, Any]]:
        """A metric's current per-group values, merged across partitions.

        Workers hold the live state, so this takes a synchronous
        with-state checkpoint and reads the values off restored
        copies — exact, because a restore is byte-faithful to the
        worker's state at the checkpoint boundary.
        """
        metric = self.catalog.metrics.get(metric_id)
        if metric is None:
            raise EngineError(f"unknown metric id {metric_id}")
        self.supervisor.request_checkpoints(with_state=True)
        stream = self.catalog.streams[metric.stream]
        config = self.supervisor.unit_config
        merged: dict[tuple, dict[str, Any]] = {}
        for tp in self.bus.topic_partitions(metric.topic):
            checkpoint = self.supervisor.checkpoints.get(tp)
            if checkpoint is None:
                continue
            metrics = [
                m
                for m in self.catalog.metrics_for_topic(metric.topic)
                if m.metric_id in checkpoint.metric_ids
            ]
            processor = TaskProcessor.restore(
                checkpoint,
                stream,
                metrics,
                reservoir_config=config.reservoir,
                lsm_config=config.lsm,
            )
            if processor.has_metric(metric_id):
                merged.update(processor.metric_values(metric_id))
        return merged

    def query_as_of(self, metric_id: int, as_of: int) -> AsOfResult:
        """Time-travel read: the metric's values at event time ``as_of``,
        answered from the supervisor's stored checkpoints plus a bounded
        replay of each partition log's tail."""
        metric = self.catalog.metrics.get(metric_id)
        if metric is None:
            raise EngineError(f"unknown metric id {metric_id}")
        tps = self.bus.topic_partitions(metric.topic)
        checkpoints = {
            tp: checkpoint
            for tp in tps
            if (checkpoint := self.supervisor.checkpoints.get(tp)) is not None
        }
        config = self.supervisor.unit_config
        return as_of_values(
            self.bus,
            tps,
            self.catalog.streams[metric.stream],
            self.catalog.metrics_for_topic(metric.topic),
            metric_id,
            as_of,
            checkpoints=checkpoints,
            reservoir_config=config.reservoir,
            lsm_config=config.lsm,
        )

    def _step_backfills(self) -> int:
        work = 0
        for job in self._backfills:
            work += job.step()
        return work

    # -- the data path --------------------------------------------------------

    def _mint_span(self) -> str | None:
        """A fresh trace-span id for the batch about to ship (or ``None``
        when telemetry is off); the supervisor stamps it onto every
        ``WorkBatch`` so worker-side hop timings stay attributable."""
        if not self.metrics.enabled:
            return None
        self._span_seq += 1
        return f"{self.metrics.process}-{self._span_seq}"

    def send(
        self,
        stream: str,
        fields: Mapping[str, Any] | None = None,
        timestamp: int | None = None,
        event: Event | None = None,
        event_id: str | None = None,
        max_rounds: int = 2000,
    ) -> Reply:
        """Send one event and pump until its reply completes."""
        if event is None:
            if fields is None:
                raise EngineError("either fields or event is required")
            if timestamp is None:
                timestamp = self.clock.now()
            if event_id is None:
                event_id = f"client-{self.bus.messages_published:012d}"
            event = Event(event_id, timestamp, fields)
        metrics = self.metrics
        batch_started = metrics.now()
        self.supervisor.active_span = self._mint_span()
        correlation = self.frontend.send(stream, event)
        metrics.counter_add("engine_batches_in_total")
        metrics.counter_add("engine_events_in_total")
        for _ in range(max_rounds):
            completed = self.frontend.take_completed(correlation)
            if completed is not None:
                metrics.counter_add("engine_replies_out_total")
                metrics.observe_since("engine_batch_ms", batch_started)
                return Reply(
                    event=completed.event,
                    stream=completed.stream,
                    results=completed.results,
                    latency_ms=completed.latency_ms,
                )
            self.pump()
        raise EngineError(
            f"reply for correlation {correlation} did not complete within "
            f"{max_rounds} pump rounds"
        )

    def send_batch(
        self,
        stream: str,
        batch: Iterable[Mapping[str, Any] | Event],
        max_rounds: int = 20000,
    ) -> list[Reply]:
        """Send a batch and pump until every reply lands; input order."""
        metrics = self.metrics
        batch_started = metrics.now()
        self.supervisor.active_span = self._mint_span()
        with metrics.time_stage("engine_ingest_ms"):
            events: list[Event] = []
            base_id = self.bus.messages_published
            for index, item in enumerate(batch):
                if isinstance(item, Event):
                    events.append(item)
                else:
                    events.append(
                        Event(
                            f"client-{base_id + index:012d}",
                            self.clock.now(),
                            item,
                        )
                    )
            correlations = self.frontend.send_batch(stream, events)
        metrics.counter_add("engine_batches_in_total")
        metrics.counter_add("engine_events_in_total", len(events))
        outstanding = set(correlations)
        for _ in range(max_rounds):
            if not outstanding:
                break
            self.pump()
            completed = self.frontend.completed
            if completed:
                outstanding.difference_update(completed)
        if outstanding:
            raise EngineError(
                f"{len(outstanding)} of {len(correlations)} batched replies did "
                f"not complete within {max_rounds} pump rounds"
            )
        replies: list[Reply] = []
        with metrics.time_stage("engine_reply_ms"):
            for correlation in correlations:
                completed_reply = self.frontend.take_completed(correlation)
                replies.append(
                    Reply(
                        event=completed_reply.event,
                        stream=completed_reply.stream,
                        results=completed_reply.results,
                        latency_ms=completed_reply.latency_ms,
                    )
                )
        metrics.counter_add("engine_replies_out_total", len(replies))
        metrics.observe_since("engine_batch_ms", batch_started)
        return replies

    # -- the world loop -------------------------------------------------------

    def pump(self) -> int:
        """One coordinator round: dispatch, collect, assemble replies."""
        self.clock.advance(self.tick_ms)
        metrics = self.metrics
        with metrics.time_stage("engine_dispatch_ms"):
            shipped = self._dispatch()
            shipped += self._step_backfills()
        # Nothing new to ship and work in flight: block briefly instead
        # of spinning — on a loaded host the coordinator must yield the
        # core to its workers.
        timeout = 0.0
        if shipped == 0 and self.supervisor.outstanding() > 0:
            timeout = 0.01
        with metrics.time_stage("engine_collect_ms"):
            collected = self._collect(timeout)
        with metrics.time_stage("engine_reply_ms"):
            self.frontend.poll_replies()
        return shipped + collected

    def run_until_quiet(self, max_rounds: int = 20000, quiet_rounds: int = 3) -> int:
        """Pump until nothing moves for ``quiet_rounds`` consecutive steps."""
        total = 0
        quiet = 0
        for _ in range(max_rounds):
            handled = self.pump()
            total += handled
            busy = (
                handled
                or self.frontend.pending
                or self.supervisor.outstanding()
                or any(view.lag() for view in self._views.values())
                or any(not job.done for job in self._backfills)
            )
            if not busy:
                quiet += 1
                if quiet >= quiet_rounds:
                    return total
            else:
                quiet = 0
        return total

    def _dispatch(self) -> int:
        """Ship contiguous offset runs to their owning workers."""
        shipped = 0
        pending = self._pending
        watermarks = self._watermarks
        supervisor = self.supervisor
        for worker_id, view in self._views.items():
            for tp in view.assignment():
                if not supervisor.can_submit(worker_id):
                    break
                messages = view.poll_one(tp, self.batch_max)
                if not messages:
                    continue
                watermark = watermarks.get(tp, 0)
                records = []
                for message in messages:
                    value = message.value
                    if isinstance(value, EventEnvelope):
                        records.append((message.offset, value.event))
                        # Offsets below the watermark are replays whose
                        # replies the worker suppresses — tracking their
                        # envelopes again would leak them forever.
                        if message.offset >= watermark:
                            pending[(tp, message.offset)] = value
                if records:
                    supervisor.submit(tp, records, watermark)
                    shipped += len(records)
        return shipped

    def _collect(self, timeout: float = 0.0) -> int:
        """Drain finished batches; deliver replies; commit watermarks."""
        published = 0
        deliver = self.frontend.deliver_reply
        for batch in self.supervisor.poll(timeout):
            tp = batch.tp
            for offset, results in batch.replies:
                envelope = self._pending.pop((tp, offset), None)
                if envelope is None or results is None:
                    continue
                reply = ReplyEnvelope(
                    correlation_id=envelope.correlation_id,
                    event_id=envelope.event.event_id,
                    task=tp,
                    results=results,
                )
                if envelope.origin_node == FRONTEND_NODE:
                    # Reply fan-in lives in this process: skip the bus
                    # hop and merge straight into the pending request.
                    deliver(reply)
                else:
                    self._reply_producer.send(
                        REPLY_TOPIC_PREFIX + envelope.origin_node,
                        key=None,
                        value=reply,
                        timestamp=self.clock.now(),
                    )
                published += 1
            watermark = max(self._watermarks.get(tp, 0), batch.next_offset)
            self._watermarks[tp] = watermark
            owner = self.supervisor.owner_of(tp)
            if owner is not None:
                self._views[owner].commit(tp, watermark)
        if self.supervisor.worker_errors:
            raise EngineError(
                "shard worker failed:\n" + self.supervisor.worker_errors[-1]
            )
        self._truncate_durable_logs()
        return published

    def _truncate_durable_logs(self) -> None:
        """Checkpoint-aware retention: whenever the checkpoint store
        advanced, flush the bus and delete every segment wholly below
        each task's stored checkpoint offset (ROADMAP: the logs no
        longer grow without bound)."""
        if self.durable_dir is None:
            return
        store = self.supervisor.checkpoints
        if store.stored == self._truncated_at:
            return
        self._truncated_at = store.stored
        self.bus.flush()
        self.bus.truncate_below(store.offsets())

    # -- rebalance / recovery -------------------------------------------------

    def _rebalance(self) -> None:
        tasks = [
            tp
            for topic in self._event_topics()
            for tp in self.bus.topic_partitions(topic)
        ]
        if not tasks:
            return
        before = {
            worker_id: set(view.assignment())
            for worker_id, view in self._views.items()
        }
        mapping = self.supervisor.assign(tasks)
        for worker_id, owned in mapping.items():
            view = self._views[worker_id]
            view.set_assignment(owned)
            for tp in owned - before.get(worker_id, set()):
                # New owner: restore from the supervisor's stored
                # checkpoint (worker-to-worker state handoff) and replay
                # only the tail past its offset; without a checkpoint
                # the whole partition log replays. The watermark
                # suppresses replayed replies either way.
                if self.supervisor.ship_checkpoint(worker_id, tp):
                    view.seek(tp, self.supervisor.checkpoints.offset(tp))
                else:
                    view.seek(tp, 0)
        # Moved tasks were rebuilt from checkpoints that may predate a
        # splice still in flight: re-derive their installs.
        for job in self._backfills:
            job.reset()
        self.rebalance_count += 1

    def _on_worker_restart(
        self, worker_id: str, tasks: set[TopicPartition]
    ) -> None:
        """Crash recovery: replay each partition's uncheckpointed tail.

        The supervisor already shipped each owned task's stored
        checkpoint into the fresh process, so the view seeks to the
        checkpointed offset (zero when no checkpoint exists yet) and
        only the tail replays. ``reply_from`` (the replied watermark)
        keeps the replay silent up to the last reply the client saw; the
        records whose replies never landed reply again, byte-identical.
        """
        view = self._views.get(worker_id)
        if view is None:
            return
        for tp in tasks:
            view.seek(tp, self.supervisor.checkpoints.offset(tp))
        # The fresh incarnation restored from checkpoints that may not
        # contain an in-flight splice (and its stash died with the old
        # process): forget those installs/acks so they re-derive.
        for job in self._backfills:
            job.reset(tasks)

    def _quiesce(self, timeout_rounds: int = 2000) -> None:
        for _ in range(timeout_rounds):
            if not self.supervisor.outstanding():
                return
            self._collect(timeout=0.01)
        raise EngineError("shard workers did not quiesce")

    # -- introspection / shutdown ---------------------------------------------

    def total_messages_processed(self) -> int:
        """Messages processed across workers (replays included)."""
        return self.supervisor.total_messages_processed()

    def telemetry(self) -> dict:
        """One merged, stable-schema telemetry snapshot of the cluster.

        Coordinator and supervisor share a registry; each worker's
        latest snapshot rides its ``BatchDone`` frames. See
        docs/OBSERVABILITY.md for the schema and the metric catalog.
        """
        snapshots = [self.metrics.snapshot()]
        for blob in self.supervisor.child_snapshots():
            try:
                snapshots.append(decode_snapshot(blob))
            except Exception:
                continue  # torn/foreign snapshot: observation only, skip
        return merge_snapshots(snapshots)

    def checkpoint_offsets(self) -> dict[TopicPartition, int]:
        """Consumed offsets per task, straight from the workers."""
        return self.supervisor.request_checkpoints()

    def checkpoint_now(self) -> dict[TopicPartition, int]:
        """Take a full checkpoint of every task, synchronously.

        Blocks until each worker's state frames land in the supervisor's
        checkpoint store; returns the checkpointed offsets. Subsequent
        crash recovery or rebalance replays only records past them.
        """
        offsets = self.supervisor.request_checkpoints(with_state=True)
        self._truncate_durable_logs()
        return offsets

    def close(self) -> None:
        """Stop every worker process (and flush the durable bus); idempotent."""
        if not self._closed:
            self._closed = True
            for job in self._backfills:
                job.close()
            self.supervisor.shutdown()
            if self.durable_dir is not None:
                self.bus.close()

    def __enter__(self) -> "ParallelCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
