"""Columnar struct-packed batch encoding for the shm data plane.

The standard :mod:`repro.shard.wire` hot-path frames (``WorkBatch``,
``BatchDone``) spend their time in per-event, per-field pure-Python
serde: a varint call per offset, a tagged-value call per field, a dict
walk per reply. Rings remove the syscalls; this module removes the
per-event decode. Events are transposed into *columns* — one packed
``struct`` array per field — so a 256-event batch costs a handful of
C-level ``struct.pack``/``unpack`` calls instead of ~2000 Python ones,
and the consumer materializes events in bulk (``zip`` of unpacked
columns straight into ``Event`` slots) before handing the batch to
``EventReservoir.append_batch`` / ``Aggregator.update_batch`` untouched.

Frame layout (``WORK_BATCH_COLUMNAR``)::

    u8 tag=29 | tp | varint reply_from | varint count
    u8 contiguous? (1: varint first_offset, 0: count x i64 offsets)
    count x i64 timestamps
    event-id string column (varint blob_len | blob | count x u32 lens)
    varint n_shapes, then per shape (a *shape* = one ordered field-name
    tuple; steady-state batches have exactly one):
      field names | varint group_count | [group row indexes u32 x n]
      one value column per field

A value column is ``u8 kind`` + packed payload: ``i64`` / ``f64`` /
``str`` fast paths (exact round-trip, one ``struct`` call), with a
``tagged`` fallback (the wire codec's per-value encoding) for columns
mixing types, ``None``, bools, bytes or out-of-range ints. Anything the
columnar form cannot represent at all falls back to the standard wire
frame for the *whole message* — :func:`decode` dispatches on the tag
byte, so both forms coexist on one ring and correctness never depends
on the fast path being taken.

``BATCH_DONE_COLUMNAR`` (tag 30) applies the same trick to replies:
group rows by result shape ``((metric_id, columns...), ...)``, one
value column per (metric, column) pair, ``None`` results as a marker
group.
"""

from __future__ import annotations

import struct

from repro.common import serde
from repro.events.event import Event
from repro.shard import wire

MSG_WORK_BATCH_COLUMNAR = 29
MSG_BATCH_DONE_COLUMNAR = 30

COL_TAGGED = 0
COL_I64 = 1
COL_F64 = 2
COL_STR = 3

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


# -- columns ------------------------------------------------------------------


def _write_str_column(buf: bytearray, values) -> None:
    encoded = [v.encode("utf-8") for v in values]
    blob = b"".join(encoded)
    serde.write_varint(buf, len(blob))
    buf += blob
    buf += struct.pack(f"<{len(encoded)}I", *map(len, encoded))


def _read_str_column(data, offset: int, count: int):
    total, offset = serde.read_varint(data, offset)
    blob = bytes(data[offset : offset + total])
    offset += total
    lengths = struct.unpack_from(f"<{count}I", data, offset)
    offset += 4 * count
    text = blob.decode("utf-8")
    out = []
    pos = 0
    if len(text) == total:  # pure ASCII: byte lengths are char lengths
        for length in lengths:
            out.append(text[pos : pos + length])
            pos += length
    else:
        for length in lengths:
            out.append(blob[pos : pos + length].decode("utf-8"))
            pos += length
    return out, offset


def _write_value_column(buf: bytearray, values) -> None:
    kinds = set(map(type, values))  # type(), not isinstance: bool is not int here
    if kinds == {int}:
        if min(values) >= _I64_MIN and max(values) <= _I64_MAX:
            buf.append(COL_I64)
            buf += struct.pack(f"<{len(values)}q", *values)
            return
    elif kinds == {float}:
        buf.append(COL_F64)
        buf += struct.pack(f"<{len(values)}d", *values)
        return
    elif kinds == {str}:
        buf.append(COL_STR)
        _write_str_column(buf, values)
        return
    buf.append(COL_TAGGED)
    for value in values:
        serde.write_value(buf, value)


def _read_value_column(data, offset: int, count: int):
    kind = data[offset]
    offset += 1
    if kind == COL_I64:
        values = struct.unpack_from(f"<{count}q", data, offset)
        return values, offset + 8 * count
    if kind == COL_F64:
        values = struct.unpack_from(f"<{count}d", data, offset)
        return values, offset + 8 * count
    if kind == COL_STR:
        return _read_str_column(data, offset, count)
    if kind == COL_TAGGED:
        values = []
        for _ in range(count):
            value, offset = serde.read_value(data, offset)
            values.append(value)
        return values, offset
    raise serde.SerdeError(f"unknown column kind: {kind}")


def _write_offsets(buf: bytearray, offsets, count: int) -> bool:
    """Contiguous runs cost one varint; anything else packs explicitly.

    Returns False when the offsets cannot be represented (caller falls
    back to the standard wire frame).
    """
    first = offsets[0]
    if first >= 0 and list(offsets) == list(range(first, first + count)):
        buf.append(1)
        serde.write_varint(buf, first)
        return True
    if min(offsets) < _I64_MIN or max(offsets) > _I64_MAX:
        return False
    buf.append(0)
    buf += struct.pack(f"<{count}q", *offsets)
    return True


def _read_offsets(data, offset: int, count: int):
    mode = data[offset]
    offset += 1
    if mode == 1:
        first, offset = serde.read_varint(data, offset)
        return range(first, first + count), offset
    values = struct.unpack_from(f"<{count}q", data, offset)
    return values, offset + 8 * count


# -- WorkBatch ----------------------------------------------------------------


def _encode_work_batch(msg: wire.WorkBatch) -> bytes:
    records = msg.records
    count = len(records)
    if count == 0:
        return wire.encode(msg)
    buf = bytearray()
    buf.append(MSG_WORK_BATCH_COLUMNAR)
    wire._write_tp(buf, msg.tp)
    serde.write_varint(buf, msg.reply_from)
    serde.write_varint(buf, count)
    if not _write_offsets(buf, [record[0] for record in records], count):
        return wire.encode(msg)
    events = [record[1] for record in records]
    try:
        buf += struct.pack(f"<{count}q", *[ev.timestamp for ev in events])
    except struct.error:
        return wire.encode(msg)
    _write_str_column(buf, [ev.event_id for ev in events])
    shapes: dict[tuple, list[int]] = {}
    for index, ev in enumerate(events):
        shapes.setdefault(tuple(ev._fields), []).append(index)
    serde.write_varint(buf, len(shapes))
    single = len(shapes) == 1
    for names, rows in shapes.items():
        serde.write_str_list(buf, list(names))
        serde.write_varint(buf, len(rows))
        if not single:
            buf += struct.pack(f"<{len(rows)}I", *rows)
        if not names:
            continue
        if single:
            matrix = [tuple(ev._fields.values()) for ev in events]
        else:
            matrix = [tuple(events[i]._fields.values()) for i in rows]
        for column in zip(*matrix):
            _write_value_column(buf, column)
    wire._write_telemetry_tail(buf, msg.trace, None)
    return bytes(buf)


def _decode_work_batch(data) -> wire.WorkBatch:
    offset = 1
    tp, offset = wire._read_tp(data, offset)
    reply_from, offset = serde.read_varint(data, offset)
    count, offset = serde.read_varint(data, offset)
    offsets, offset = _read_offsets(data, offset, count)
    timestamps = struct.unpack_from(f"<{count}q", data, offset)
    offset += 8 * count
    ids, offset = _read_str_column(data, offset, count)
    n_shapes, offset = serde.read_varint(data, offset)
    events: list[Event] = [None] * count  # type: ignore[list-item]
    blank = Event.__new__
    for _ in range(n_shapes):
        names, offset = serde.read_str_list(data, offset)
        group_count, offset = serde.read_varint(data, offset)
        if n_shapes == 1:
            rows = range(count)
        else:
            rows = struct.unpack_from(f"<{group_count}I", data, offset)
            offset += 4 * group_count
        if names:
            columns = []
            for _ in names:
                column, offset = _read_value_column(data, offset, group_count)
                columns.append(column)
            for i, values in zip(rows, zip(*columns)):
                ev = blank(Event)
                ev.event_id = ids[i]
                ev.timestamp = timestamps[i]
                ev._fields = dict(zip(names, values))
                events[i] = ev
        else:
            for i in rows:
                ev = blank(Event)
                ev.event_id = ids[i]
                ev.timestamp = timestamps[i]
                ev._fields = {}
                events[i] = ev
    trace, _ = wire._read_telemetry_tail(data, offset)
    return wire.WorkBatch(tp, reply_from, list(zip(offsets, events)), trace)


# -- BatchDone ----------------------------------------------------------------


def _encode_batch_done(msg: wire.BatchDone) -> bytes:
    replies = msg.replies
    count = len(replies)
    buf = bytearray()
    buf.append(MSG_BATCH_DONE_COLUMNAR)
    wire._write_tp(buf, msg.tp)
    serde.write_varint(buf, msg.next_offset)
    serde.write_varint(buf, msg.processed)
    serde.write_varint(buf, count)
    if count == 0:
        wire._write_telemetry_tail(buf, msg.trace, msg.stats)
        return bytes(buf)
    if not _write_offsets(buf, [reply[0] for reply in replies], count):
        return wire.encode(msg)
    groups: dict[object, list[int]] = {}
    for index, (_, results) in enumerate(replies):
        if results is None:
            key = None
        else:
            key = tuple(
                (metric_id, tuple(values))
                for metric_id, values in results.items()
            )
        groups.setdefault(key, []).append(index)
    serde.write_varint(buf, len(groups))
    single = len(groups) == 1
    for key, rows in groups.items():
        serde.write_varint(buf, len(rows))
        if not single:
            buf += struct.pack(f"<{len(rows)}I", *rows)
        if key is None:
            buf.append(0)
            continue
        buf.append(1)
        serde.write_varint(buf, len(key))
        for metric_id, columns in key:
            if metric_id < 0:
                return wire.encode(msg)
            serde.write_varint(buf, metric_id)
            serde.write_str_list(buf, list(columns))
        group_results = [replies[i][1] for i in rows]
        for metric_id, columns in key:
            for column in columns:
                _write_value_column(
                    buf, [results[metric_id][column] for results in group_results]
                )
    wire._write_telemetry_tail(buf, msg.trace, msg.stats)
    return bytes(buf)


def _decode_batch_done(data) -> wire.BatchDone:
    offset = 1
    tp, offset = wire._read_tp(data, offset)
    next_offset, offset = serde.read_varint(data, offset)
    processed, offset = serde.read_varint(data, offset)
    count, offset = serde.read_varint(data, offset)
    if count == 0:
        trace, stats = wire._read_telemetry_tail(data, offset)
        return wire.BatchDone(tp, next_offset, processed, [], trace, stats)
    offsets, offset = _read_offsets(data, offset, count)
    n_groups, offset = serde.read_varint(data, offset)
    results_by_row: list = [None] * count
    for _ in range(n_groups):
        group_count, offset = serde.read_varint(data, offset)
        if n_groups == 1:
            rows = range(count)
        else:
            rows = struct.unpack_from(f"<{group_count}I", data, offset)
            offset += 4 * group_count
        present = data[offset]
        offset += 1
        if not present:
            continue  # rows stay None
        n_metrics, offset = serde.read_varint(data, offset)
        shape = []
        for _ in range(n_metrics):
            metric_id, offset = serde.read_varint(data, offset)
            columns, offset = serde.read_str_list(data, offset)
            shape.append((metric_id, columns))
        per_metric = []
        for metric_id, columns in shape:
            matrix = []
            for _ in columns:
                column, offset = _read_value_column(data, offset, group_count)
                matrix.append(column)
            value_rows = (
                list(zip(*matrix)) if columns else [()] * group_count
            )
            per_metric.append((metric_id, columns, value_rows))
        for group_index, i in enumerate(rows):
            results_by_row[i] = {
                metric_id: dict(zip(columns, value_rows[group_index]))
                for metric_id, columns, value_rows in per_metric
            }
    trace, stats = wire._read_telemetry_tail(data, offset)
    return wire.BatchDone(
        tp, next_offset, processed, list(zip(offsets, results_by_row)),
        trace, stats,
    )


# -- entry points -------------------------------------------------------------


def encode(msg: object) -> bytes:
    """Frame a message for a ring: columnar hot path, wire for the rest."""
    if type(msg) is wire.WorkBatch:
        return _encode_work_batch(msg)
    if type(msg) is wire.BatchDone:
        return _encode_batch_done(msg)
    return wire.encode(msg)


def decode(payload: bytes) -> object:
    """Decode a ring frame: dispatches on the tag byte, so columnar and
    standard wire frames coexist on one channel."""
    tag = payload[0]
    if tag == MSG_WORK_BATCH_COLUMNAR:
        return _decode_work_batch(memoryview(payload))
    if tag == MSG_BATCH_DONE_COLUMNAR:
        return _decode_batch_done(memoryview(payload))
    return wire.decode(payload)
