"""The shard supervisor: spawn, route, monitor, restart.

The supervisor owns N :mod:`~repro.shard.worker` processes connected by
duplex control pipes. It shards tasks over workers with the engine's
:class:`~repro.engine.assignment.StickyAssignmentStrategy` (each worker
modelled as its own single-processor node) and replays the full control
log into any worker it restarts after a crash. In single-coordinator
mode (:class:`~repro.shard.parallel.ParallelCluster`) it also carries
the data plane: ``WorkBatch`` frames to the owning worker, ``BatchDone``
replies and stats back. In sharded-frontend mode (``listen_dir`` set)
the data plane moves to per-frontend AF_UNIX sockets and the pipes
carry control only; frontends' progress is credited back through
:meth:`ShardSupervisor.note_processed` so per-worker stats and the
checkpoint cadence stay merged here either way.

It is also the cluster's checkpoint authority: a
:class:`CheckpointStore` keeps the latest materialized
:class:`~repro.engine.task.TaskCheckpoint` per task, fed by
``CheckpointAck`` frames — solicited by :meth:`request_checkpoints`,
fired periodically by the ``checkpoint_interval`` cadence, or arriving
late after their request timed out (never dropped: a stored checkpoint
is a stored checkpoint, whoever asked for it). A restarted worker gets
the control log, its assignment, and then one ``RestoreTask`` per owned
task, so recovery replays only the tail past the checkpointed offset.

Flow control is a small credit scheme: at most ``max_outstanding``
un-acked work batches per worker. Combined with the cluster's bounded
batch size this keeps the hot-path pipe traffic strictly below OS
buffer capacity, so neither side blocks on a full pipe (a blocked
supervisor plus a blocked worker would be a classic cross-pipe
deadlock). Checkpoint frames can exceed the buffer, but they only flow
when the peer is guaranteed to be reading: ``RestoreTask`` goes to a
freshly spawned worker draining its setup messages, or after a quiesce
plus checkpoint refresh has emptied both directions; large acks are
absorbed by the supervisor's regular :meth:`poll` drain.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import uuid
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import EngineError
from repro.common.timesource import TimeSource, resolve_time_source
from repro.engine.assignment import (
    PreviousState,
    ProcessorInfo,
    StickyAssignmentStrategy,
)
from repro.engine.processor import UnitConfig
from repro.engine.task import TaskCheckpoint
from repro.messaging.log import TopicPartition
from repro.shard import columnar, shm, wire
from repro.shard.shm import ShmError, ShmRing
from repro.shard.worker import shard_worker_main
from repro.telemetry import MetricsRegistry

#: pre-encoded doorbell frame: wakes a peer's ``connection.wait`` after
#: frames were published to its ring (see :mod:`repro.shard.shm`).
DOORBELL = wire.encode(wire.ShmDoorbell())


class CheckpointStore:
    """Latest materialized checkpoint per task.

    Incoming :class:`~repro.shard.wire.TaskCheckpointFrame` payloads may
    be deltas (immutable files the worker knew we already hold are
    omitted); :meth:`ingest` merges them with the previously stored
    files into a fully materialized :class:`TaskCheckpoint`, so restore
    shipping never depends on history. A frame that references a file
    we neither received nor hold is rejected — the previous checkpoint
    stays authoritative, which is exactly the fallback a crash between
    checkpoint request and ack needs.

    With ``durable_dir`` set, every stored checkpoint is also persisted
    to ``<durable_dir>/<task>.ckpt`` (CRC-guarded, written via tmp +
    atomic rename, always fully materialized) and loaded back on
    construction — a restarted coordinator recovers its whole store from
    disk and ships checkpoints into fresh workers without replaying any
    history. A checkpoint that fails its CRC on load is skipped: the
    task simply replays from offset zero, which is correct, just slower.
    """

    _SUFFIX = ".ckpt"

    def __init__(self, durable_dir: str | None = None) -> None:
        self._checkpoints: dict[TopicPartition, TaskCheckpoint] = {}
        self.durable_dir = durable_dir
        self.stored = 0
        self.rejected = 0
        self.loaded = 0
        if durable_dir is not None:
            os.makedirs(durable_dir, exist_ok=True)
            self._load()

    def _load(self) -> None:
        from repro.common import serde

        for name in sorted(os.listdir(self.durable_dir)):
            if not name.endswith(self._SUFFIX):
                continue
            path = os.path.join(self.durable_dir, name)
            with open(path, "rb") as handle:
                data = handle.read()
            try:
                crc, offset = serde.read_u32(data, 0)
                payload, _ = serde.read_bytes(data, offset)
                if serde.crc32_of(payload) != crc:
                    continue  # torn write: replay-from-zero covers the task
                checkpoint, _ = wire._read_task_checkpoint(memoryview(payload), 0)
            except Exception:
                continue
            self._checkpoints[checkpoint.tp] = checkpoint
            self.loaded += 1

    def _persist(self, checkpoint: TaskCheckpoint) -> None:
        from repro.common import serde

        payload = bytearray()
        wire._write_task_checkpoint(payload, checkpoint)
        framed = bytearray()
        serde.write_u32(framed, serde.crc32_of(payload))
        serde.write_bytes(framed, bytes(payload))
        path = os.path.join(self.durable_dir, f"{checkpoint.tp}{self._SUFFIX}")
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(framed)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        from repro.messaging.segments import fsync_dir

        fsync_dir(self.durable_dir)  # make the rename itself durable

    def __len__(self) -> int:
        return len(self._checkpoints)

    def get(self, tp: TopicPartition) -> TaskCheckpoint | None:
        """The latest materialized checkpoint of a task, if any."""
        return self._checkpoints.get(tp)

    def offset(self, tp: TopicPartition) -> int:
        """Replay start for a task: checkpointed offset, or 0."""
        checkpoint = self._checkpoints.get(tp)
        return checkpoint.offset if checkpoint is not None else 0

    def offsets(self) -> dict[TopicPartition, int]:
        """Stored checkpoint offsets per task (truncation authority)."""
        return {
            tp: checkpoint.offset
            for tp, checkpoint in self._checkpoints.items()
        }

    def known_files(self, tp: TopicPartition) -> tuple[str, ...]:
        """Immutable file names held for a task (delta advertisement)."""
        checkpoint = self._checkpoints.get(tp)
        if checkpoint is None:
            return ()
        return tuple(sorted(checkpoint.transferable_files()))

    def ingest(self, frame: wire.TaskCheckpointFrame) -> bool:
        """Materialize and store one frame; False when rejected."""
        checkpoint = frame.checkpoint
        stored = self._checkpoints.get(checkpoint.tp)
        if stored is not None and checkpoint.offset < stored.offset:
            self.rejected += 1  # late frame older than what we hold
            return False
        reservoir_cache = stored.reservoir_files if stored is not None else {}
        state_cache = stored.state_files if stored is not None else {}
        reservoir_files = dict(checkpoint.reservoir_files)
        for name in checkpoint.reservoir_sealed:
            if name in reservoir_files:
                continue
            cached = reservoir_cache.get(name)
            if cached is None:
                self.rejected += 1
                return False
            reservoir_files[name] = cached
        state_files = dict(checkpoint.state_files)
        for name in checkpoint.state_checkpoint.all_files():
            if name in state_files:
                continue
            cached = state_cache.get(name)
            if cached is None:
                self.rejected += 1
                return False
            state_files[name] = cached
        checkpoint.reservoir_files = reservoir_files
        checkpoint.state_files = state_files
        self._checkpoints[checkpoint.tp] = checkpoint
        self.stored += 1
        if self.durable_dir is not None:
            self._persist(checkpoint)
        return True


def _default_context() -> multiprocessing.context.BaseContext:
    """Fork where available (fast, Linux/CI); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class WorkerHandle:
    """One live worker process and its routing state."""

    worker_id: str
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    assigned: set[TopicPartition] = field(default_factory=set)
    outstanding: int = 0
    restarts: int = 0
    #: shm transport only: WorkBatch frames out / BatchDone frames back.
    #: The supervisor owns both segments (creates, unlinks); the pipe
    #: stays the control plane and the doorbell channel.
    work_ring: ShmRing | None = None
    reply_ring: ShmRing | None = None

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ShardSupervisor:
    """Spawns and babysits the shard workers of one parallel cluster."""

    def __init__(
        self,
        workers: int = 2,
        unit_config: UnitConfig | None = None,
        strategy: object | None = None,
        max_outstanding: int = 2,
        checkpoint_interval: int | None = None,
        mp_context: multiprocessing.context.BaseContext | None = None,
        listen_dir: str | None = None,
        checkpoint_dir: str | None = None,
        transport: str = "socket",
        time_source: TimeSource | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        if workers <= 0:
            raise EngineError(f"need at least one shard worker: {workers}")
        self._time = resolve_time_source(time_source)
        #: the facade usually passes its own registry so coordinator and
        #: supervisor accounting live in one snapshot; standalone use
        #: gets a private one. Per-worker counters are labeled by
        #: worker id and survive worker removal/restart.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else MetricsRegistry("supervisor", time_source=self._time)
        )
        #: span id minted by the facade for the batch currently being
        #: dispatched; :meth:`submit` stamps it (plus a send timestamp)
        #: onto outgoing ``WorkBatch`` frames so workers attribute their
        #: queue wait to the right span.
        self.active_span: str | None = None
        #: latest encoded registry snapshot per worker, piggybacked on
        #: ``BatchDone`` frames. Replace semantics: a restarted worker's
        #: fresh snapshot supersedes its predecessor's.
        self._worker_snapshots: dict[str, bytes] = {}
        if transport not in ("socket", "shm"):
            raise EngineError(f"unknown shard transport: {transport!r}")
        #: ``"shm"`` moves WorkBatch/BatchDone payloads onto per-worker
        #: shared-memory rings (columnar-encoded); the pipe then carries
        #: control frames plus one-byte doorbells. ``"socket"`` keeps
        #: everything on the pipe (the portable / cross-host path).
        self.transport = transport
        self._shm_prefix = f"rgshm-{uuid.uuid4().hex[:8]}"
        self._spawn_seq = 0
        self._ctx = mp_context if mp_context is not None else _default_context()
        #: directory for per-worker AF_UNIX data-socket addresses. Set by
        #: the sharded-frontend router: each worker then listens for
        #: frontend data connections at :meth:`worker_addr`, and the
        #: supervisor pipe carries only the control plane. ``None``
        #: (classic ``ParallelCluster`` mode) keeps work batches on the
        #: supervisor pipe.
        self.listen_dir = listen_dir
        self.unit_config = unit_config if unit_config is not None else UnitConfig()
        self.strategy = (
            strategy if strategy is not None else StickyAssignmentStrategy(0)
        )
        self.max_outstanding = max_outstanding
        #: records processed between automatic with-state checkpoint
        #: requests; None disables the cadence (explicit requests only).
        self.checkpoint_interval = checkpoint_interval
        #: with ``checkpoint_dir``, checkpoints survive this process: the
        #: store persists every frame and reloads them on construction,
        #: so a restarted coordinator recovers without replay-from-zero.
        self.checkpoints = CheckpointStore(checkpoint_dir)
        self._control_log: list[bytes] = []
        self._buffered: list[tuple[object, WorkerHandle]] = []
        self._owners: dict[TopicPartition, str] = {}
        self._next_worker = 0
        self._next_checkpoint_request = 0
        #: fire-and-forget checkpoint requests: request id -> worker ids
        #: whose ack is still expected; acks answering anything else
        #: count as late. Entries are pruned when a worker dies or is
        #: removed, so an interrupted request cannot leak.
        self._inflight_checkpoints: dict[int, set[str]] = {}
        self._records_since_checkpoint = 0
        self.handles: dict[str, WorkerHandle] = {}
        self.restarts = 0
        self.late_checkpoint_acks = 0
        self.worker_errors: list[str] = []
        #: (task, metric_id) pairs whose backfill splice a worker acked;
        #: the cluster-side backfill job consumes and clears these.
        self.backfill_installed: set[tuple[TopicPartition, int]] = set()
        #: cluster hook invoked after a crashed worker was respawned;
        #: receives (worker_id, tasks-to-replay).
        self.on_restart: Callable[[str, set[TopicPartition]], None] | None = None
        for _ in range(workers):
            self.add_worker()

    # -- topology -------------------------------------------------------------

    def add_worker(self) -> str:
        """Spawn one more worker (empty until the next :meth:`assign`).

        A worker added after DDL happened receives the full control log,
        so its catalogue matches its siblings' before any work arrives.
        """
        worker_id = f"shard-{self._next_worker}"
        self._next_worker += 1
        handle = self._spawn(worker_id)
        for frame in self._control_log:
            handle.conn.send_bytes(frame)
        self.handles[worker_id] = handle
        return worker_id

    def remove_worker(self, worker_id: str) -> None:
        """Gracefully retire a worker (call :meth:`assign` afterwards).

        All trace of the handle goes with it: frames parked in the
        internal buffer (e.g. a ``BatchDone`` set aside while a
        checkpoint request drained the pipes) would otherwise be
        delivered by a later :meth:`poll` and mutate a dead handle's
        counters, and stale ``_owners`` entries would keep routing
        :meth:`submit` at a worker that no longer exists.
        """
        handle = self._handle(worker_id)
        self._stop_handle(handle)
        del self.handles[worker_id]
        self._forget_expected_acks(worker_id)
        self._buffered = [
            (msg, owner) for msg, owner in self._buffered if owner is not handle
        ]
        self._owners = {
            tp: owner for tp, owner in self._owners.items() if owner != worker_id
        }

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker (tests: crash without cleanup)."""
        self._handle(worker_id).process.kill()

    def crash_worker(self, worker_id: str) -> None:
        """Ask a worker to hard-exit at its next message (fault injection)."""
        self._handle(worker_id).conn.send_bytes(wire.encode(wire.Crash()))

    def worker_ids(self) -> list[str]:
        """Current workers, in spawn order."""
        return list(self.handles)

    def _handle(self, worker_id: str) -> WorkerHandle:
        try:
            return self.handles[worker_id]
        except KeyError:
            raise EngineError(f"unknown shard worker {worker_id!r}") from None

    def worker_addr(self, worker_id: str) -> str | None:
        """Data-socket address of a worker (stable across restarts), or
        ``None`` when the supervisor runs without ``listen_dir``."""
        if self.listen_dir is None:
            return None
        return os.path.join(self.listen_dir, f"{worker_id}.sock")

    def _spawn(self, worker_id: str) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        work_ring = reply_ring = None
        shm_names = None
        if self.transport == "shm":
            # Fresh segments per incarnation (the names travel in the
            # spawn args, so no handshake): a restarted worker never
            # sees its predecessor's half-consumed frames.
            tag = f"{self._shm_prefix}-{worker_id}-{self._spawn_seq}"
            self._spawn_seq += 1
            work_ring = ShmRing.create(
                "producer", name=f"{tag}-work", time_source=self._time
            )
            reply_ring = ShmRing.create(
                "consumer", name=f"{tag}-reply", time_source=self._time
            )
            shm_names = (work_ring.name, reply_ring.name)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(
                child_conn,
                worker_id,
                self.unit_config,
                self.worker_addr(worker_id),
                shm_names,
            ),
            name=f"railgun-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(
            worker_id,
            process,
            parent_conn,
            work_ring=work_ring,
            reply_ring=reply_ring,
        )

    # -- control plane --------------------------------------------------------

    def broadcast_control(self, msg: object) -> None:
        """Send a DDL/schema control message to every worker; log it for
        replay into future restarts."""
        frame = wire.encode(msg)
        self._control_log.append(frame)
        for handle in self.handles.values():
            if handle.alive:
                try:
                    handle.conn.send_bytes(frame)
                except OSError:
                    pass  # dead worker; the restart replays the log

    def send_control(self, worker_id: str, msg: object) -> bool:
        """Send one control frame to one worker, outside the control log.

        For per-worker, per-incarnation traffic (backfill installs):
        the frame must *not* replay into a restarted process — its
        payload is only valid against the state the recipient held when
        it was built. Returns False when the worker is unreachable (the
        caller re-derives and re-sends after the restart).
        """
        handle = self._handle(worker_id)
        if not handle.alive:
            return False
        try:
            handle.conn.send_bytes(wire.encode(msg))
        except OSError:
            return False
        return True

    def assign(self, tasks: list[TopicPartition]) -> dict[str, set[TopicPartition]]:
        """(Re)shard ``tasks`` over the current workers, stickily.

        Only call while quiesced (no outstanding work). Returns the new
        per-worker task sets; the caller diffs against the old ones to
        decide which partitions need a replay into their new owner.
        """
        processors = [
            ProcessorInfo(worker_id, worker_id) for worker_id in self.handles
        ]
        previous = PreviousState(
            active={
                handle.worker_id: set(handle.assigned)
                for handle in self.handles.values()
            }
        )
        assignment = self.strategy.assign(tasks, processors, previous)
        result: dict[str, set[TopicPartition]] = {}
        self._owners.clear()
        for worker_id, handle in self.handles.items():
            owned = set(assignment.active.get(worker_id, set()))
            result[worker_id] = owned
            handle.assigned = owned
            for tp in owned:
                self._owners[tp] = worker_id
            if handle.alive:
                try:
                    handle.conn.send_bytes(
                        wire.encode(
                            wire.AssignPartitions(tuple(sorted(owned, key=str)))
                        )
                    )
                except OSError:
                    pass  # dead worker; the restart resends its assignment
        return result

    def owner_of(self, tp: TopicPartition) -> str | None:
        """Worker currently owning a task."""
        return self._owners.get(tp)

    def _checkpoint_request_for(
        self, request_id: int, handle: WorkerHandle, with_state: bool
    ) -> bytes:
        """Encode one worker's request, advertising files we hold."""
        known: tuple[tuple[TopicPartition, tuple[str, ...]], ...] = ()
        if with_state:
            known = tuple(
                (tp, names)
                for tp in sorted(handle.assigned, key=str)
                if (names := self.checkpoints.known_files(tp))
            )
        return wire.encode(wire.CheckpointRequest(request_id, with_state, known))

    def begin_checkpoint(self) -> int:
        """Fire-and-forget a with-state checkpoint request to every worker.

        The acks arrive through :meth:`poll`, which routes their frames
        into the checkpoint store — no waiting, no quiesce. Returns the
        request id (or -1 when no worker was reachable).
        """
        request_id = self._next_checkpoint_request
        self._next_checkpoint_request += 1
        sent: set[str] = set()
        for handle in self.handles.values():
            if not handle.alive:
                continue
            try:
                handle.conn.send_bytes(
                    self._checkpoint_request_for(request_id, handle, True)
                )
            except OSError:
                continue  # dead worker; the restart reships its state
            sent.add(handle.worker_id)
        if not sent:
            return -1
        self._inflight_checkpoints[request_id] = sent
        return request_id

    def request_checkpoints(
        self, timeout: float = 5.0, with_state: bool = False
    ) -> dict[TopicPartition, int]:
        """Ask every worker for its consumed offsets; merge the acks.

        With ``with_state`` the acks also carry full (delta) checkpoint
        frames, which land in the checkpoint store. Outstanding work is
        allowed: the pipe is FIFO, so each ack reflects every batch
        submitted before the request. ``BatchDone`` frames drained while
        waiting are parked and returned by the next :meth:`poll`.

        A worker that dies during the wait is reaped and restarted
        inside the loop and its ack is no longer waited for — restart +
        checkpointed replay will satisfy whatever the caller needed —
        so a crash costs one reap, not the whole timeout.
        """
        request_id = self._next_checkpoint_request
        self._next_checkpoint_request += 1
        waiting = set()
        for handle in self.handles.values():
            if not handle.alive:
                continue
            try:
                handle.conn.send_bytes(
                    self._checkpoint_request_for(request_id, handle, with_state)
                )
            except OSError:
                continue  # already dead: reaped below, never waited for
            waiting.add(handle.worker_id)
        offsets: dict[TopicPartition, int] = {}
        parked: list[tuple[object, WorkerHandle]] = []
        deadline = self._time.deadline(timeout)
        while waiting and not deadline.expired():
            for msg, handle in self._drain(timeout=0.05):
                if isinstance(msg, wire.CheckpointAck):
                    self._ingest_ack(msg, handle, expected_id=request_id)
                    if msg.request_id == request_id:
                        offsets.update(msg.offsets)
                        waiting.discard(handle.worker_id)
                else:
                    # Parked once, locally: re-buffering into _drain's
                    # source would re-deliver the same frames every
                    # 50 ms iteration.
                    parked.append((msg, handle))
            waiting.difference_update(self._reap_dead())
        self._buffered = parked + self._buffered
        if waiting:
            raise EngineError(f"no checkpoint ack from workers: {sorted(waiting)}")
        return offsets

    def _ingest_ack(
        self,
        msg: wire.CheckpointAck,
        handle: WorkerHandle,
        expected_id: int | None = None,
    ) -> None:
        """Store an ack's checkpoint payload, whatever request it answers.

        A dropped frame would be a lost checkpoint, so payloads are
        routed into the store even when the ack is late; late acks are
        counted per worker (visible in :meth:`stats`).
        """
        for frame in msg.frames:
            self.checkpoints.ingest(frame)
        expected = self._inflight_checkpoints.get(msg.request_id)
        if expected is not None and handle.worker_id in expected:
            expected.discard(handle.worker_id)
            if not expected:
                del self._inflight_checkpoints[msg.request_id]
            self.telemetry.counter_add(
                "supervisor_checkpoint_acks_total", label=handle.worker_id
            )
        elif expected_id is not None and msg.request_id == expected_id:
            self.telemetry.counter_add(
                "supervisor_checkpoint_acks_total", label=handle.worker_id
            )
        else:
            self.telemetry.counter_add(
                "supervisor_checkpoint_acks_late_total", label=handle.worker_id
            )
            self.late_checkpoint_acks += 1

    def _forget_expected_acks(self, worker_id: str) -> None:
        """Stop expecting checkpoint acks from a dead/removed worker —
        its request entries would otherwise never drain."""
        for request_id in list(self._inflight_checkpoints):
            expected = self._inflight_checkpoints[request_id]
            expected.discard(worker_id)
            if not expected:
                del self._inflight_checkpoints[request_id]

    # -- data plane -----------------------------------------------------------

    def can_submit(self, worker_id: str) -> bool:
        """True while the worker has spare outstanding-batch credits."""
        handle = self._handle(worker_id)
        return handle.alive and handle.outstanding < self.max_outstanding

    def submit(
        self,
        tp: TopicPartition,
        records: list,
        reply_from: int,
    ) -> None:
        """Ship one contiguous offset run to the task's owning worker.

        A send into a worker that just died (``is_alive`` lags the
        kernel reaping a SIGKILLed process) is swallowed: the next
        :meth:`poll` restarts the worker and the restart hook replays
        the partition, which re-covers the dropped records.
        """
        worker_id = self.owner_of(tp)
        if worker_id is None:
            raise EngineError(f"task {tp} is not assigned to any worker")
        handle = self._handle(worker_id)
        trace = None
        if self.telemetry.enabled:
            # Stamp the facade's span plus our send time (source-seconds
            # on the shared monotonic clock, in ms); the worker turns
            # the delta into its queue-wait observation.
            trace = (
                self.active_span or "",
                (("sent_ms", self.telemetry.now() * 1000.0),),
            )
        batch = wire.WorkBatch(tp, reply_from, records, trace)
        try:
            if handle.work_ring is not None:
                # Payload travels the ring (columnar-packed); the pipe
                # carries only a doorbell so the worker's blocking wait
                # wakes. Publish-then-ring ordering means a consumed
                # doorbell always finds the frame already visible.
                handle.work_ring.send(columnar.encode(batch))
                handle.conn.send_bytes(DOORBELL)
            else:
                handle.conn.send_bytes(wire.encode(batch))
        except (OSError, ShmError):
            return  # dead worker; _reap_dead restarts + replays
        handle.outstanding += 1

    def outstanding(self) -> int:
        """Un-acked work batches across all workers."""
        return sum(handle.outstanding for handle in self.handles.values())

    def note_processed(self, worker_id: str, records: int, replies: int) -> None:
        """Credit work that bypassed the supervisor pipe (router mode).

        In sharded-frontend mode ``BatchDone`` frames flow over the
        frontend↔worker data sockets, so the supervisor never sees them;
        the router reports the per-worker ``(records, replies)`` deltas
        it merged instead. This keeps two supervisor responsibilities
        whole: the per-worker counters behind :meth:`stats` /
        :meth:`total_messages_processed`, and the checkpoint cadence —
        the credited records advance ``checkpoint_interval`` exactly as
        pipe-borne ``BatchDone`` frames do (the next :meth:`poll` fires
        the with-state request once the interval is crossed). Deltas for
        a worker that died or was retired meanwhile still count toward
        the cluster totals.
        """
        self.telemetry.counter_add(
            "supervisor_worker_records_total", records, label=worker_id
        )
        self.telemetry.counter_add(
            "supervisor_worker_replies_total", replies, label=worker_id
        )
        self._records_since_checkpoint += records

    def poll(self, timeout: float = 0.0) -> list[wire.BatchDone]:
        """Collect finished batches; detect and restart dead workers.

        ``CheckpointAck`` frames arriving here — periodic cadence acks
        and stragglers from a timed-out :meth:`request_checkpoints` —
        have their checkpoint payloads routed into the store (a dropped
        frame would be a lost checkpoint); late ones are counted in
        :meth:`stats`. The poll also drives the checkpoint cadence:
        once ``checkpoint_interval`` records have been processed since
        the last request, a fire-and-forget with-state request goes out.
        """
        done: list[wire.BatchDone] = []
        for msg, handle in self._drain(timeout):
            if isinstance(msg, wire.BatchDone):
                handle.outstanding = max(0, handle.outstanding - 1)
                self.telemetry.counter_add(
                    "supervisor_worker_records_total",
                    msg.processed,
                    label=handle.worker_id,
                )
                self.telemetry.counter_add(
                    "supervisor_worker_replies_total",
                    len(msg.replies),
                    label=handle.worker_id,
                )
                if msg.stats is not None:
                    self._worker_snapshots[handle.worker_id] = msg.stats
                self._records_since_checkpoint += msg.processed
                done.append(msg)
            elif isinstance(msg, wire.CheckpointAck):
                self._ingest_ack(msg, handle)
            elif isinstance(msg, wire.BackfillInstalled):
                self.backfill_installed.add((msg.tp, msg.metric_id))
            elif isinstance(msg, wire.WorkerError):
                self.worker_errors.append(msg.message)
        self._reap_dead()
        self.telemetry.gauge_set(
            "supervisor_outstanding_batches", self.outstanding()
        )
        if (
            self.checkpoint_interval is not None
            and self._records_since_checkpoint >= self.checkpoint_interval
        ):
            self._records_since_checkpoint = 0
            self.begin_checkpoint()
        return done

    def _drain(self, timeout: float) -> list[tuple[object, WorkerHandle]]:
        out = list(self._buffered)
        self._buffered.clear()
        by_conn = {
            handle.conn: handle for handle in self.handles.values()
        }
        ready = multiprocessing.connection.wait(list(by_conn), timeout)
        for conn in ready:
            handle = by_conn[conn]
            try:
                while True:
                    msg = wire.decode(conn.recv_bytes())
                    # Doorbells only signal readiness; the payload is
                    # picked up from the reply ring below.
                    if not isinstance(msg, wire.ShmDoorbell):
                        out.append((msg, handle))
                    # Only keep reading while more frames are buffered;
                    # otherwise recv would block.
                    if not conn.poll(0):
                        break
            except (EOFError, OSError):
                continue  # dead worker; _reap_dead restarts it
        for handle in self.handles.values():
            if handle.reply_ring is None:
                continue
            try:
                for payload in handle.reply_ring.drain():
                    out.append((columnar.decode(payload), handle))
            except ShmError:
                continue  # torn frame from a dying worker; restart replays
        return out

    def _reap_dead(self) -> list[str]:
        """Restart dead workers; returns the restarted worker ids."""
        restarted: list[str] = []
        for handle in self.handles.values():
            if handle.alive:
                continue
            self._restart(handle)
            restarted.append(handle.worker_id)
        return restarted

    def ship_checkpoint(self, worker_id: str, tp: TopicPartition) -> bool:
        """Send a task's stored checkpoint into a worker, if we hold one.

        Pipe FIFO guarantees the ``RestoreTask`` lands before any
        subsequent ``WorkBatch``, so the worker seeds the task processor
        from the checkpoint and the tail replay starts from its offset.
        """
        checkpoint = self.checkpoints.get(tp)
        if checkpoint is None:
            return False
        handle = self._handle(worker_id)
        if not handle.alive:
            return False
        try:
            handle.conn.send_bytes(
                wire.encode(wire.RestoreTask(wire.TaskCheckpointFrame(checkpoint)))
            )
        except OSError:
            return False  # dead worker; the restart reships its state
        return True

    def _restart(self, handle: WorkerHandle) -> None:
        """Respawn a dead worker and rebuild its world.

        The fresh process gets the full control log (catalogue), its
        previous assignment, and one ``RestoreTask`` per owned task the
        checkpoint store holds; the cluster's ``on_restart`` hook then
        replays each owned partition's tail — from the checkpointed
        offset where a checkpoint was shipped, from offset zero where
        none exists — so task state is rebuilt deterministically.
        In-flight batches died with the process; the replay covers them
        too.
        """
        handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.work_ring is not None:
            handle.work_ring.close(unlink=True)
        if handle.reply_ring is not None:
            handle.reply_ring.close(unlink=True)
        self._forget_expected_acks(handle.worker_id)
        fresh = self._spawn(handle.worker_id)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.work_ring = fresh.work_ring
        handle.reply_ring = fresh.reply_ring
        handle.outstanding = 0
        handle.restarts += 1
        self.restarts += 1
        self.telemetry.counter_add(
            "supervisor_worker_restarts_total", label=handle.worker_id
        )
        for frame in self._control_log:
            handle.conn.send_bytes(frame)
        handle.conn.send_bytes(
            wire.encode(
                wire.AssignPartitions(tuple(sorted(handle.assigned, key=str)))
            )
        )
        for tp in sorted(handle.assigned, key=str):
            self.ship_checkpoint(handle.worker_id, tp)
        if self.on_restart is not None:
            self.on_restart(handle.worker_id, set(handle.assigned))

    # -- stats / shutdown -----------------------------------------------------

    def total_messages_processed(self) -> int:
        """Messages processed across workers, retired ones included
        (replays count too)."""
        return self.telemetry.counter_sum("supervisor_worker_records_total")

    def child_snapshots(self) -> list[bytes]:
        """Latest encoded worker registry snapshots, for facade merges."""
        return list(self._worker_snapshots.values())

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-worker counters for tests and benches.

        A thin compat view over the telemetry registry: the legacy key
        names survive, the numbers come from the worker-labeled
        ``supervisor_*_total`` counters (see docs/OBSERVABILITY.md).
        """
        telemetry = self.telemetry
        return {
            worker_id: {
                "processed": telemetry.counter_value(
                    "supervisor_worker_records_total", worker_id
                ),
                "replies_sent": telemetry.counter_value(
                    "supervisor_worker_replies_total", worker_id
                ),
                "restarts": handle.restarts,
                "checkpoint_acks": telemetry.counter_value(
                    "supervisor_checkpoint_acks_total", worker_id
                ),
                "late_checkpoint_acks": telemetry.counter_value(
                    "supervisor_checkpoint_acks_late_total", worker_id
                ),
            }
            for worker_id, handle in self.handles.items()
        }

    def shutdown(self) -> None:
        """Stop every worker; idempotent."""
        for handle in self.handles.values():
            self._stop_handle(handle)
        self.handles.clear()
        if self.transport == "shm":
            # Backstop for segments a SIGKILLed worker left behind.
            shm.sweep(self._shm_prefix)

    def _stop_handle(self, handle: WorkerHandle) -> None:
        if handle.alive:
            try:
                handle.conn.send_bytes(wire.encode(wire.Shutdown()))
            except (OSError, ValueError):
                pass
            handle.process.join(timeout=2.0)
        if handle.alive:
            handle.process.kill()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.work_ring is not None:
            handle.work_ring.close(unlink=True)
            handle.work_ring = None
        if handle.reply_ring is not None:
            handle.reply_ring.close(unlink=True)
            handle.reply_ring = None

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
