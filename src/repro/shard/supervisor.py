"""The shard supervisor: spawn, route, monitor, restart.

The supervisor owns N :mod:`~repro.shard.worker` processes connected by
duplex pipes. It shards tasks over workers with the engine's
:class:`~repro.engine.assignment.StickyAssignmentStrategy` (each worker
modelled as its own single-processor node), routes ``WorkBatch`` frames
to the owning worker, merges ``BatchDone`` replies and stats back, and
replays the full control log into any worker it restarts after a crash.

Flow control is a small credit scheme: at most ``max_outstanding``
un-acked work batches per worker. Combined with the cluster's bounded
batch size this keeps both pipe directions strictly below OS buffer
capacity, so neither side can ever block on a full pipe (a blocked
supervisor plus a blocked worker would be a classic cross-pipe
deadlock).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import EngineError
from repro.engine.assignment import (
    PreviousState,
    ProcessorInfo,
    StickyAssignmentStrategy,
)
from repro.engine.processor import UnitConfig
from repro.messaging.log import TopicPartition
from repro.shard import wire
from repro.shard.worker import shard_worker_main


def _default_context() -> multiprocessing.context.BaseContext:
    """Fork where available (fast, Linux/CI); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class WorkerHandle:
    """One live worker process and its routing state."""

    worker_id: str
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    assigned: set[TopicPartition] = field(default_factory=set)
    outstanding: int = 0
    processed: int = 0
    replies_sent: int = 0
    restarts: int = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ShardSupervisor:
    """Spawns and babysits the shard workers of one parallel cluster."""

    def __init__(
        self,
        workers: int = 2,
        unit_config: UnitConfig | None = None,
        strategy: object | None = None,
        max_outstanding: int = 2,
        mp_context: multiprocessing.context.BaseContext | None = None,
    ) -> None:
        if workers <= 0:
            raise EngineError(f"need at least one shard worker: {workers}")
        self._ctx = mp_context if mp_context is not None else _default_context()
        self.unit_config = unit_config if unit_config is not None else UnitConfig()
        self.strategy = (
            strategy if strategy is not None else StickyAssignmentStrategy(0)
        )
        self.max_outstanding = max_outstanding
        self._control_log: list[bytes] = []
        self._buffered: list[tuple[object, WorkerHandle]] = []
        self._owners: dict[TopicPartition, str] = {}
        self._next_worker = 0
        self._next_checkpoint_request = 0
        self.handles: dict[str, WorkerHandle] = {}
        self.restarts = 0
        self.worker_errors: list[str] = []
        #: cluster hook invoked after a crashed worker was respawned;
        #: receives (worker_id, tasks-to-replay).
        self.on_restart: Callable[[str, set[TopicPartition]], None] | None = None
        for _ in range(workers):
            self.add_worker()

    # -- topology -------------------------------------------------------------

    def add_worker(self) -> str:
        """Spawn one more worker (empty until the next :meth:`assign`).

        A worker added after DDL happened receives the full control log,
        so its catalogue matches its siblings' before any work arrives.
        """
        worker_id = f"shard-{self._next_worker}"
        self._next_worker += 1
        handle = self._spawn(worker_id)
        for frame in self._control_log:
            handle.conn.send_bytes(frame)
        self.handles[worker_id] = handle
        return worker_id

    def remove_worker(self, worker_id: str) -> None:
        """Gracefully retire a worker (call :meth:`assign` afterwards)."""
        handle = self._handle(worker_id)
        self._stop_handle(handle)
        del self.handles[worker_id]

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL a worker (tests: crash without cleanup)."""
        self._handle(worker_id).process.kill()

    def crash_worker(self, worker_id: str) -> None:
        """Ask a worker to hard-exit at its next message (fault injection)."""
        self._handle(worker_id).conn.send_bytes(wire.encode(wire.Crash()))

    def worker_ids(self) -> list[str]:
        """Current workers, in spawn order."""
        return list(self.handles)

    def _handle(self, worker_id: str) -> WorkerHandle:
        try:
            return self.handles[worker_id]
        except KeyError:
            raise EngineError(f"unknown shard worker {worker_id!r}") from None

    def _spawn(self, worker_id: str) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, worker_id, self.unit_config),
            name=f"railgun-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        return WorkerHandle(worker_id, process, parent_conn)

    # -- control plane --------------------------------------------------------

    def broadcast_control(self, msg: object) -> None:
        """Send a DDL/schema control message to every worker; log it for
        replay into future restarts."""
        frame = wire.encode(msg)
        self._control_log.append(frame)
        for handle in self.handles.values():
            if handle.alive:
                try:
                    handle.conn.send_bytes(frame)
                except OSError:
                    pass  # dead worker; the restart replays the log

    def assign(self, tasks: list[TopicPartition]) -> dict[str, set[TopicPartition]]:
        """(Re)shard ``tasks`` over the current workers, stickily.

        Only call while quiesced (no outstanding work). Returns the new
        per-worker task sets; the caller diffs against the old ones to
        decide which partitions need a replay into their new owner.
        """
        processors = [
            ProcessorInfo(worker_id, worker_id) for worker_id in self.handles
        ]
        previous = PreviousState(
            active={
                handle.worker_id: set(handle.assigned)
                for handle in self.handles.values()
            }
        )
        assignment = self.strategy.assign(tasks, processors, previous)
        result: dict[str, set[TopicPartition]] = {}
        self._owners.clear()
        for worker_id, handle in self.handles.items():
            owned = set(assignment.active.get(worker_id, set()))
            result[worker_id] = owned
            handle.assigned = owned
            for tp in owned:
                self._owners[tp] = worker_id
            if handle.alive:
                try:
                    handle.conn.send_bytes(
                        wire.encode(
                            wire.AssignPartitions(tuple(sorted(owned, key=str)))
                        )
                    )
                except OSError:
                    pass  # dead worker; the restart resends its assignment
        return result

    def owner_of(self, tp: TopicPartition) -> str | None:
        """Worker currently owning a task."""
        return self._owners.get(tp)

    def request_checkpoints(self, timeout: float = 5.0) -> dict[TopicPartition, int]:
        """Ask every worker for its consumed offsets; merge the acks.

        Outstanding work is allowed: the pipe is FIFO, so each ack
        reflects every batch submitted before the request. Any
        ``BatchDone`` frames drained while waiting are returned to the
        caller via :meth:`poll` on the next call (they are buffered).
        """
        request_id = self._next_checkpoint_request
        self._next_checkpoint_request += 1
        frame = wire.encode(wire.CheckpointRequest(request_id))
        waiting = set()
        for handle in self.handles.values():
            if handle.alive:
                handle.conn.send_bytes(frame)
                waiting.add(handle.worker_id)
        offsets: dict[TopicPartition, int] = {}
        deadline = time.monotonic() + timeout
        while waiting and time.monotonic() < deadline:
            for msg, handle in self._drain(timeout=0.05):
                if (
                    isinstance(msg, wire.CheckpointAck)
                    and msg.request_id == request_id
                ):
                    offsets.update(msg.offsets)
                    waiting.discard(handle.worker_id)
                else:
                    self._buffered.append((msg, handle))
        if waiting:
            raise EngineError(f"no checkpoint ack from workers: {sorted(waiting)}")
        return offsets

    # -- data plane -----------------------------------------------------------

    def can_submit(self, worker_id: str) -> bool:
        """True while the worker has spare outstanding-batch credits."""
        handle = self._handle(worker_id)
        return handle.alive and handle.outstanding < self.max_outstanding

    def submit(
        self,
        tp: TopicPartition,
        records: list,
        reply_from: int,
    ) -> None:
        """Ship one contiguous offset run to the task's owning worker.

        A send into a worker that just died (``is_alive`` lags the
        kernel reaping a SIGKILLed process) is swallowed: the next
        :meth:`poll` restarts the worker and the restart hook replays
        the partition, which re-covers the dropped records.
        """
        worker_id = self.owner_of(tp)
        if worker_id is None:
            raise EngineError(f"task {tp} is not assigned to any worker")
        handle = self._handle(worker_id)
        try:
            handle.conn.send_bytes(
                wire.encode(wire.WorkBatch(tp, reply_from, records))
            )
        except OSError:
            return  # dead worker; _reap_dead restarts + replays
        handle.outstanding += 1

    def outstanding(self) -> int:
        """Un-acked work batches across all workers."""
        return sum(handle.outstanding for handle in self.handles.values())

    def poll(self, timeout: float = 0.0) -> list[wire.BatchDone]:
        """Collect finished batches; detect and restart dead workers."""
        done: list[wire.BatchDone] = []
        for msg, handle in self._drain(timeout):
            if isinstance(msg, wire.BatchDone):
                handle.outstanding = max(0, handle.outstanding - 1)
                handle.processed += msg.processed
                handle.replies_sent += len(msg.replies)
                done.append(msg)
            elif isinstance(msg, wire.WorkerError):
                self.worker_errors.append(msg.message)
            # CheckpointAcks outside request_checkpoints are dropped:
            # they answer a request that already timed out.
        self._reap_dead()
        return done

    def _drain(self, timeout: float) -> list[tuple[object, WorkerHandle]]:
        out = list(self._buffered)
        self._buffered.clear()
        by_conn = {
            handle.conn: handle for handle in self.handles.values()
        }
        ready = multiprocessing.connection.wait(list(by_conn), timeout)
        for conn in ready:
            handle = by_conn[conn]
            try:
                while True:
                    out.append((wire.decode(conn.recv_bytes()), handle))
                    # Only keep reading while more frames are buffered;
                    # otherwise recv would block.
                    if not conn.poll(0):
                        break
            except (EOFError, OSError):
                continue  # dead worker; _reap_dead restarts it
        return out

    def _reap_dead(self) -> None:
        for handle in self.handles.values():
            if handle.alive:
                continue
            self._restart(handle)

    def _restart(self, handle: WorkerHandle) -> None:
        """Respawn a dead worker and rebuild its world.

        The fresh process gets the full control log (catalogue) plus its
        previous assignment; the cluster's ``on_restart`` hook then
        replays each owned partition's log from offset zero so task
        state is rebuilt deterministically. In-flight batches died with
        the process — the replay covers them too.
        """
        handle.process.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        fresh = self._spawn(handle.worker_id)
        handle.process = fresh.process
        handle.conn = fresh.conn
        handle.outstanding = 0
        handle.restarts += 1
        self.restarts += 1
        for frame in self._control_log:
            handle.conn.send_bytes(frame)
        handle.conn.send_bytes(
            wire.encode(
                wire.AssignPartitions(tuple(sorted(handle.assigned, key=str)))
            )
        )
        if self.on_restart is not None:
            self.on_restart(handle.worker_id, set(handle.assigned))

    # -- stats / shutdown -----------------------------------------------------

    def total_messages_processed(self) -> int:
        """Messages processed across workers (replays included)."""
        return sum(handle.processed for handle in self.handles.values())

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-worker counters for tests and benches."""
        return {
            worker_id: {
                "processed": handle.processed,
                "replies_sent": handle.replies_sent,
                "restarts": handle.restarts,
            }
            for worker_id, handle in self.handles.items()
        }

    def shutdown(self) -> None:
        """Stop every worker; idempotent."""
        for handle in self.handles.values():
            self._stop_handle(handle)
        self.handles.clear()

    def _stop_handle(self, handle: WorkerHandle) -> None:
        if handle.alive:
            try:
                handle.conn.send_bytes(wire.encode(wire.Shutdown()))
            except (OSError, ValueError):
                pass
            handle.process.join(timeout=2.0)
        if handle.alive:
            handle.process.kill()
            handle.process.join(timeout=2.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
