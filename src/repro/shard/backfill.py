"""Backfill driver for the supervisor-backed shard topologies.

:class:`ShardBackfill` is the process-parallel counterpart of
:class:`~repro.replay.backfill.CooperativeBackfill`: the coordinator
cannot splice into a worker's :class:`~repro.engine.task.TaskProcessor`
directly, so the job replays each partition's log through a local
:class:`~repro.replay.backfill.ShadowReplay`, exports the state at a
**cut offset** and ships it to the owning worker as a
:class:`~repro.shard.wire.BackfillInstall` control frame.

The cut is the task's *submitted frontier* — the owner view's
:meth:`~repro.messaging.consumer.PartitionView.position` — which is
always reachable by the worker (every record below it has been shipped)
and never behind the worker (a record is only processed after it was
submitted). The worker stashes the install until its ``next_offset``
reaches the cut, splitting a work batch mid-run when the cut lands
inside one, then splices and acks with
:class:`~repro.shard.wire.BackfillInstalled`. Ingest never pauses.

Installs travel **outside** the supervisor's replayable control log
(:meth:`~repro.shard.supervisor.ShardSupervisor.send_control`): their
payload is only valid against the recipient incarnation's exact offset.
Recovery is by reset: when a worker restarts or a rebalance moves
tasks, the cluster calls :meth:`ShardBackfill.reset` for the affected
tasks — in-flight installs and acks are forgotten and the shadow
re-exports at the restored frontier. Re-installing onto a worker that
already spliced is a harmless identity overwrite (the worker just
re-acks), because shadow state at a given offset is a deterministic
function of the arrival sequence.

Completion ordering is load-bearing: a synchronous with-state
checkpoint runs *before* the ``CreateMetricOp`` broadcast enters the
replayable control log. The stored checkpoints then already contain the
spliced state, so a crash after the broadcast restores the metric with
its history; a crash before the broadcast restores tasks without the
metric def and the reset re-splices them. The reverse order would let a
restart register the def against an empty state — silently wrong
values.
"""

from __future__ import annotations

from repro.common.errors import EngineError
from repro.engine.catalog import CreateMetricOp, MetricDef
from repro.messaging.log import TopicPartition
from repro.replay.backfill import ReplayError, ShadowReplay
from repro.shard import wire


class ShardBackfill:
    """One late-defined metric's materialization across shard workers."""

    def __init__(self, cluster, metric: MetricDef, batch: int = 512) -> None:
        self.cluster = cluster
        self.metric = metric
        self.batch = batch
        self.stream = cluster.catalog.streams[metric.stream]
        self.shadows: dict[TopicPartition, ShadowReplay] = {}
        #: cut offset of the in-flight (unacked) install per task
        self.sent: dict[TopicPartition, int] = {}
        self.done = False

    # -- driving ---------------------------------------------------------------

    def step(self) -> int:
        """Advance every shadow toward its task's submitted frontier;
        install the caught-up ones; complete once every task acked.
        Returns a work count (records replayed + protocol actions)."""
        if self.done:
            return 0
        cluster = self.cluster
        supervisor = cluster.supervisor
        acked = supervisor.backfill_installed
        work = 0
        tasks = cluster.bus.topic_partitions(self.metric.topic)
        remaining = False
        for tp in tasks:
            if (tp, self.metric.metric_id) in acked:
                shadow = self.shadows.pop(tp, None)
                if shadow is not None:
                    shadow.close()
                continue
            remaining = True
            if tp in self.sent:
                continue  # install in flight; the ack (or a reset) resolves it
            owner = supervisor.owner_of(tp)
            if owner is None:
                continue
            frontier = cluster._views[owner].position(tp)
            shadow = self.shadows.get(tp)
            if shadow is not None and shadow.position > frontier:
                # The owner was rebuilt below the shadow (restart from
                # an older checkpoint): restart the replay.
                shadow.close()
                del self.shadows[tp]
                shadow = None
            if shadow is None:
                shadow = self._make_shadow(tp)
                self.shadows[tp] = shadow
            work += shadow.step(self.batch, stop=frontier)
            if shadow.position == frontier:
                state = shadow.export()
                install = wire.BackfillInstall(
                    tp,
                    frontier,
                    self.metric,
                    state.state_rows,
                    state.distinct_rows,
                    state.iterator_positions,
                )
                if supervisor.send_control(owner, install):
                    self.sent[tp] = frontier
                    work += 1
                # An unreachable worker is about to be reaped; the
                # restart hook resets this task and the next step
                # re-exports at the restored frontier.
        if not remaining and tasks:
            if self._complete():
                work += 1
        return work

    def _make_shadow(self, tp: TopicPartition) -> ShadowReplay:
        """A shadow from offset 0, or — when retention already reclaimed
        the early segments — seeded from the task's stored checkpoint
        (value-correct, window-primed; the documented bounded-replay
        trade)."""
        supervisor = self.cluster.supervisor
        config = supervisor.unit_config
        try:
            return ShadowReplay(
                self.cluster.bus, tp, self.stream, self.metric,
                reservoir_config=config.reservoir,
                lsm_config=config.lsm,
            )
        except ReplayError:
            checkpoint = supervisor.checkpoints.get(tp)
            if checkpoint is None:
                raise
            seed_metrics = tuple(
                m
                for m in self.cluster.catalog.metrics_for_topic(
                    self.metric.topic
                )
                if m.metric_id in checkpoint.metric_ids
            )
            return ShadowReplay(
                self.cluster.bus, tp, self.stream, self.metric,
                reservoir_config=config.reservoir,
                lsm_config=config.lsm,
                seed_checkpoint=checkpoint,
                seed_metrics=seed_metrics,
            )

    def _complete(self) -> bool:
        """Checkpoint-then-broadcast (see the module docstring for why
        this order); False when a worker vanished mid-completion — the
        restart hook resets its tasks and the job keeps running."""
        cluster = self.cluster
        try:
            cluster.supervisor.request_checkpoints(with_state=True)
        except EngineError:
            return False
        cluster._publish_op(CreateMetricOp(self.metric))
        acked = cluster.supervisor.backfill_installed
        for key in [k for k in acked if k[1] == self.metric.metric_id]:
            acked.discard(key)
        self.done = True
        self.close()
        return True

    # -- recovery --------------------------------------------------------------

    def reset(self, tasks: set[TopicPartition] | None = None) -> None:
        """Forget in-flight installs and acks — all of them, or just for
        ``tasks``. Called after a worker restart or a rebalance: the
        targeted workers were rebuilt from checkpoints that may predate
        the splice, so those tasks re-replay and re-install. Harmless
        when the splice actually survived — the worker re-acks the
        duplicate install without applying it."""
        if self.done:
            return
        acked = self.cluster.supervisor.backfill_installed
        for tp, metric_id in list(acked):
            if metric_id != self.metric.metric_id:
                continue
            if tasks is None or tp in tasks:
                acked.discard((tp, metric_id))
        for tp in list(self.sent):
            if tasks is None or tp in tasks:
                del self.sent[tp]

    def close(self) -> None:
        """Release every shadow's retention pin; idempotent."""
        for shadow in self.shadows.values():
            shadow.close()
        self.shadows.clear()
