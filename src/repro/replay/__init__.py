"""Event-sourced replay: backfill, as-of queries, consistent cuts.

The durable partition log (PR 5) records every event the engine ever
ingested; this package turns that record from a crash-recovery detail
into a queryable history:

- :mod:`repro.replay.backfill` — define a metric *after the fact* and
  materialize it by replaying the log behind the live writer, then
  atomically splice it into the live catalog (no ingest pause);
- :mod:`repro.replay.asof` — time-travel reads: a metric's values as
  they stood at an event-time instant, served from a checkpoint plus a
  bounded log replay;
- :mod:`repro.replay.cut` — consistent-cut export/import for
  cluster-to-cluster migration of a durable deployment.
"""

from repro.replay.asof import AsOfResult, as_of_values, seed_processor
from repro.replay.backfill import ReplayError, ShadowReplay
from repro.replay.cut import export_cut, import_cut

__all__ = [
    "AsOfResult",
    "as_of_values",
    "seed_processor",
    "ReplayError",
    "ShadowReplay",
    "export_cut",
    "import_cut",
]
