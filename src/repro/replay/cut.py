"""Consistent-cut export/import: cluster-to-cluster migration.

A durable cluster's whole history lives under its ``durable_dir`` —
partition segment files, the operations log, committed offsets and (in
the shard topologies) the persisted checkpoint store. ``export_cut``
quiesces the cluster, flushes every buffer, stamps the bus directory
with a consistent cut (per-partition end offsets, written atomically
*after* the data they describe is on disk) and copies the directory.
``import_cut`` validates a copy by rolling every log back to the
recorded cut — any tail torn mid-copy is discarded — after which
``create_cluster(..., durable_dir=<copy>)`` over the copy *is* the
migrated cluster: the single-coordinator ``process`` topology recovers
catalogue, logs and checkpoints entirely from the directory.
"""

from __future__ import annotations

import os
import shutil

from repro.messaging.durable import DurableBus, read_cut, write_cut
from repro.messaging.log import TopicPartition
from repro.replay.backfill import ReplayError


def export_cut(cluster, dest: str) -> str:
    """Snapshot a quiesced durable cluster's directory into ``dest``.

    ``dest`` must not exist yet; returns it, ready to hand to
    ``create_cluster(..., durable_dir=dest)`` (after :func:`import_cut`)
    on the destination host.
    """
    durable_dir = getattr(cluster, "durable_dir", None)
    if durable_dir is None:
        raise ReplayError(
            "consistent-cut export needs a durable cluster "
            "(create_cluster(..., durable_dir=...))"
        )
    cluster.run_until_quiet()
    if hasattr(cluster, "checkpoint_now"):
        cluster.checkpoint_now()
    bus = cluster.bus
    bus.flush()
    ends = {tp: bus.log(tp).end_offset for tp in bus.all_partitions()}
    write_cut(bus.root, 0, ends)
    shutil.copytree(durable_dir, dest)
    return dest


def import_cut(root: str) -> dict[TopicPartition, int]:
    """Validate an exported copy; returns the cut's end offsets.

    Opens the copied bus, rolls every partition back to the cut's
    recorded end (dropping anything torn past it) and closes it again —
    the directory is then a faithful durable state for a fresh cluster.
    """
    bus_root = os.path.join(root, "bus")
    if not os.path.isdir(bus_root):
        bus_root = root
    _, ends = read_cut(bus_root)
    if not ends:
        raise ReplayError(f"no consistent cut found under {root!r}")
    bus = DurableBus(bus_root)
    try:
        for tp, end in ends.items():
            bus.log(tp).truncate_to(end)
    finally:
        bus.close()
    return ends
