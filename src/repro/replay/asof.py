"""As-of (time-travel) queries: a metric's values at a past instant.

``as_of_values`` answers "what did this metric read when event time was
``ts``?" without keeping any historical state online: per partition it
rebuilds a shadow processor — from a persisted checkpoint when one
covers only events at or before ``ts``, else from offset 0 — and
replays the log in arrival order, stopping at the first record whose
event timestamp passes ``ts``. Sealed windows fall out naturally: the
shadow's window boundaries are wherever they stood at the stop point.

The checkpoint seed is what makes the replay *bounded*: steady-state
clusters checkpoint continuously, so the tail between the newest usable
checkpoint and the as-of point is short, and
:attr:`AsOfResult.replayed` (asserted strictly below
:attr:`AsOfResult.log_records` in the tests) shows the saving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.engine.catalog import MetricDef, StreamDef
from repro.engine.envelope import EventEnvelope
from repro.engine.task import TaskCheckpoint, TaskProcessor
from repro.lsm.db import LsmConfig
from repro.messaging.broker import MessageBus
from repro.messaging.cursor import LogCursor
from repro.messaging.log import TopicPartition
from repro.reservoir.reservoir import ReservoirConfig


@dataclass
class AsOfResult:
    """A time-travel read: values + how much log it cost to answer."""

    values: dict[tuple, dict[str, Any]]
    #: log records actually replayed across partitions
    replayed: int
    #: total log records that existed (the unbounded-replay cost)
    log_records: int
    #: partitions whose replay was seeded from a checkpoint
    seeded: int = 0


def as_of_values(
    bus: MessageBus,
    tps: Sequence[TopicPartition],
    stream: StreamDef,
    metrics: Sequence[MetricDef],
    metric_id: int,
    as_of: int,
    *,
    checkpoints: Mapping[TopicPartition, TaskCheckpoint] | None = None,
    reservoir_config: ReservoirConfig | None = None,
    lsm_config: LsmConfig | None = None,
    batch: int = 256,
) -> AsOfResult:
    """The queried metric's per-group values as of event time ``as_of``.

    ``metrics`` is the catalog's metric list for the topic (the shadow
    must register every metric a seeding checkpoint's state contains);
    ``checkpoints`` offers each partition's newest persisted checkpoint.
    """
    merged: dict[tuple, dict[str, Any]] = {}
    replayed = 0
    log_records = 0
    seeded = 0
    sorted_metrics = sorted(metrics, key=lambda m: m.metric_id)
    for tp in tps:
        log_records += bus.end_offset(tp)
        processor, begin = seed_processor(
            tp, stream, sorted_metrics,
            (checkpoints or {}).get(tp), as_of,
            reservoir_config, lsm_config,
        )
        if begin > 0:
            seeded += 1
        with LogCursor(bus, tp, begin) as cursor:
            done = False
            while not done:
                messages = cursor.read(batch)
                if not messages:
                    break
                records = []
                for message in messages:
                    value = message.value
                    if not isinstance(value, EventEnvelope):
                        continue
                    if value.event.timestamp > as_of:
                        done = True
                        break
                    records.append((message.offset, value.event))
                if records:
                    processor.process_batch(records)
                    replayed += len(records)
        if processor.has_metric(metric_id):
            merged.update(processor.metric_values(metric_id))
    return AsOfResult(
        values=merged, replayed=replayed, log_records=log_records, seeded=seeded
    )


def seed_processor(
    tp: TopicPartition,
    stream: StreamDef,
    metrics: Sequence[MetricDef],
    checkpoint: TaskCheckpoint | None,
    as_of: int,
    reservoir_config: ReservoirConfig | None,
    lsm_config: LsmConfig | None,
) -> tuple[TaskProcessor, int]:
    """A shadow processor + the offset its replay starts at.

    A checkpoint is usable only when every event it contains sits at or
    before the as-of instant (its reservoir's event-time frontier tells
    us) — otherwise it already folded in the future we are rewinding
    past, and the replay must start from offset 0.
    """
    if checkpoint is not None and checkpoint.offset > 0:
        seed_metrics = [
            m for m in metrics if m.metric_id in checkpoint.metric_ids
        ]
        processor = TaskProcessor.restore(
            checkpoint,
            stream,
            seed_metrics,
            reservoir_config=reservoir_config,
            lsm_config=lsm_config,
        )
        if processor.reservoir.max_seen_ts <= as_of:
            return processor, checkpoint.offset
    return (
        TaskProcessor.build(
            tp,
            stream,
            list(metrics),
            reservoir_config=reservoir_config,
            lsm_config=lsm_config,
        ),
        0,
    )
