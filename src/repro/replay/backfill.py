"""Shadow replay: materializing a late-defined metric from the log.

A :class:`ShadowReplay` is the reader half of a backfill: a private
:class:`~repro.engine.task.TaskProcessor` containing (at least) the new
metric, fed the partition log's ``(offset, event)`` records in arrival
order through a retention-pinning :class:`~repro.messaging.cursor.LogCursor`.
Because reservoir chunking, dedup, out-of-order policy and iterator
motion are deterministic functions of the arrival sequence, a shadow
that replayed ``[0, k)`` holds *exactly* the metric state a processor
that carried the metric from offset 0 would hold at offset ``k`` — so
its exported rows + iterator positions can be grafted into the live
processor the moment the live processor sits at offset ``k``
(:meth:`~repro.engine.task.TaskProcessor.apply_backfill`).

Two seeding modes:

- **offset 0** (log complete): bit-exact, the default;
- **nearest persisted checkpoint** (history truncated below the
  checkpoint): the shadow restores the checkpoint, registers the new
  metric with reservoir-window priming, and replays the tail. Values
  are window-correct, but float folds may differ in last-bit rounding
  from a metric defined at offset 0 — the trade for bounded replay
  after retention already reclaimed early segments.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import EngineError
from repro.engine.catalog import CreateMetricOp, MetricDef, StreamDef
from repro.engine.envelope import EventEnvelope
from repro.engine.task import BackfillState, TaskCheckpoint, TaskProcessor
from repro.events.event import Event
from repro.lsm.db import LsmConfig
from repro.messaging.broker import MessageBus
from repro.messaging.cursor import LogCursor
from repro.messaging.log import TopicPartition
from repro.reservoir.reservoir import ReservoirConfig


class ReplayError(EngineError):
    """Replay/backfill cannot proceed (e.g. history gone, no seed)."""


class ShadowReplay:
    """One partition's backfill reader + shadow processor."""

    def __init__(
        self,
        bus: MessageBus,
        tp: TopicPartition,
        stream: StreamDef,
        metric: MetricDef,
        *,
        reservoir_config: ReservoirConfig | None = None,
        lsm_config: LsmConfig | None = None,
        seed_checkpoint: TaskCheckpoint | None = None,
        seed_metrics: tuple[MetricDef, ...] = (),
    ) -> None:
        self.tp = tp
        self.metric = metric
        self.replayed = 0
        start = getattr(bus.log(tp), "start_offset", 0)
        if seed_checkpoint is not None and seed_checkpoint.offset >= start:
            self.processor = TaskProcessor.restore(
                seed_checkpoint,
                stream,
                [m for m in seed_metrics if m.metric_id != metric.metric_id],
                reservoir_config=reservoir_config,
                lsm_config=lsm_config,
            )
            # Window priming from the restored reservoir stands in for
            # the truncated prefix of the log.
            self.processor.add_metric(dataclasses.replace(metric, backfill=True))
            begin = seed_checkpoint.offset
        elif start == 0:
            self.processor = TaskProcessor.build(
                tp,
                stream,
                [metric],
                reservoir_config=reservoir_config,
                lsm_config=lsm_config,
            )
            begin = 0
        else:
            raise ReplayError(
                f"cannot backfill {tp}: log starts at {start} and no "
                f"checkpoint at or above it was offered"
            )
        self.cursor = LogCursor(bus, tp, begin)

    @property
    def position(self) -> int:
        """Next log offset the shadow will consume."""
        return self.cursor.position

    def lag(self) -> int:
        """Records between the shadow and the live log end."""
        return self.cursor.lag()

    def step(self, max_records: int = 256, stop: int | None = None) -> int:
        """Replay up to ``max_records`` records (never past ``stop``);
        returns how many log records were consumed."""
        limit = max_records
        if stop is not None:
            limit = min(limit, stop - self.position)
            if limit <= 0:
                return 0
        messages = self.cursor.read(limit)
        # Cluster-bus partitions carry enveloped events; a frontend's
        # private partition logs carry the raw events. Replay both.
        records = []
        for message in messages:
            value = message.value
            if isinstance(value, EventEnvelope):
                records.append((message.offset, value.event))
            elif isinstance(value, Event):
                records.append((message.offset, value))
        if records:
            self.processor.process_batch(records)
        self.replayed += len(messages)
        return len(messages)

    def run_to(self, stop: int, max_records: int = 256) -> None:
        """Replay until the shadow sits exactly at ``stop``."""
        while self.position < stop:
            if self.step(max_records, stop=stop) == 0:
                raise ReplayError(
                    f"shadow for {self.tp} stalled at {self.position} "
                    f"before reaching {stop}"
                )

    def export(self) -> BackfillState:
        """The graftable state at the shadow's current offset."""
        return self.processor.export_backfill(self.metric.metric_id)

    def close(self) -> None:
        """Release the retention pin; idempotent."""
        self.cursor.close()


class CooperativeBackfill:
    """Backfill driver for the step-driven ``single`` cluster.

    One shadow per (processor unit, partition) holding the metric's
    topic — actives and replicas splice independently, each at its own
    consumption frontier. The cooperative loop is the atomicity story:
    :meth:`step` runs from ``pump()`` while no unit is mid-batch, so
    "shadow position == processor offset" is an exact splice point, and
    ingest between pumps proceeds untouched. Completion publishes the
    ``CreateMetricOp`` to the operations topic, so units discovering the
    metric later (fresh task builds, new nodes) register it normally.
    """

    def __init__(self, cluster, metric: MetricDef, batch: int = 256) -> None:
        self.cluster = cluster
        self.metric = metric
        self.batch = batch
        self.stream = cluster.catalog.streams[metric.stream]
        self.shadows: dict[tuple[str, TopicPartition], ShadowReplay] = {}
        self.done = False

    def step(self) -> int:
        """Advance every shadow toward its target frontier; splice the
        ones that caught up. Returns records replayed this step."""
        if self.done:
            return 0
        work = 0
        targets: list[tuple[str, TopicPartition, object]] = []
        for node in self.cluster.alive_nodes():
            for unit in node.units:
                for tp, processor in unit.task_processors.items():
                    if tp.topic == self.metric.topic:
                        targets.append((unit.unit_id, tp, processor))
        for unit_id, tp, processor in targets:
            if processor.has_metric(self.metric.metric_id):
                continue
            key = (unit_id, tp)
            shadow = self.shadows.get(key)
            if shadow is not None and shadow.position > processor.next_offset:
                # The target was rebuilt below the shadow (rebalance,
                # fresh start): restart the replay from genesis.
                shadow.close()
                self.shadows.pop(key)
                shadow = None
            if shadow is None:
                config = self.cluster.unit_config
                shadow = ShadowReplay(
                    self.cluster.bus, tp, self.stream, self.metric,
                    reservoir_config=config.reservoir,
                    lsm_config=config.lsm,
                )
                self.shadows[key] = shadow
            frontier = processor.next_offset
            work += shadow.step(self.batch, stop=frontier)
            if shadow.position == frontier:
                processor.apply_backfill(self.metric, shadow.export())
                shadow.close()
                self.shadows.pop(key)
        if targets and all(
            processor.has_metric(self.metric.metric_id)
            for _, _, processor in targets
        ):
            # Every live holder is spliced: make the metric durable and
            # visible to late joiners via the operations topic (the
            # catalog re-apply is a setdefault no-op).
            self.cluster._publish_op(CreateMetricOp(self.metric))
            self.done = True
            self.close()
            work += 1
        return work

    def close(self) -> None:
        for shadow in self.shadows.values():
            shadow.close()
        self.shadows.clear()
