"""Length-prefixed TCP framing for front-door connections.

One frame = a 4-byte big-endian length followed by exactly one
``shard.wire`` payload (tag byte + typed body). TCP gives a byte
stream; the prefix restores the message boundaries the pipe-based
planes get for free from ``send_bytes``. The cap rejects frames that
could only come from a confused (or hostile) peer before a gigabyte of
buffer is committed to them.
"""

from __future__ import annotations

import asyncio
import struct

from repro.common.errors import EngineError

#: Upper bound on a single frame's payload (32 MiB — far above any
#: sane IngestBatch at the default ``ingest_max`` chunking).
MAX_FRAME_BYTES = 32 << 20

_LEN = struct.Struct(">I")


class FrameError(EngineError):
    """A malformed or truncated frame; the connection is unusable."""


def frame(payload: bytes) -> bytes:
    """Prefix one wire payload with its length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {len(payload)} bytes")
    return _LEN.pack(len(payload)) + payload


async def read_frame(reader: asyncio.StreamReader) -> bytes | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF mid-frame raises :class:`FrameError` — the peer vanished with a
    message half-sent, which callers must treat as an abort, not a
    hangup.
    """
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise FrameError("connection closed mid-header") from None
        return None
    except ConnectionResetError:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {length} bytes")
    try:
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        raise FrameError("connection closed mid-frame") from None


async def write_frame(writer: asyncio.StreamWriter, payload: bytes) -> None:
    """Write one frame and wait out the transport's backpressure."""
    writer.write(frame(payload))
    await writer.drain()
