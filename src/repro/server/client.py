"""Front-door clients: asyncio-native and a sync wrapper.

:class:`AsyncRailgunClient` is the protocol implementation — one TCP
connection, a background receive task resolving futures per
correlation, DDL over :class:`~repro.shard.wire.DdlRequest`, and
``send``/``send_batch`` returning the same
:class:`~repro.engine.cluster.Reply` objects every in-process facade
returns (results byte-identical to ``create_cluster("single")``;
``latency_ms`` is the client-observed round trip).

:class:`RailgunClient` wraps it for synchronous code by running a
private event loop on a daemon thread — one protocol implementation,
two call styles (the equivalence tests drive the sync wrapper, so both
layers sit under the byte-identical bar).

Two deliberate API differences from the in-process facades:

- Dict sends must carry an explicit ``timestamp`` — the cluster's
  logical clock is not shared with remote processes, so there is no
  honest default. Event ids are minted as ``{session}-{seq:09d}``; the
  server-issued session prefix keeps ids unique across every client of
  the cluster.
- An over-quota batch raises :class:`ServerBusyError` (after
  ``busy_retries`` automatic retries honoring the server's
  ``retry_after_ms``) — load shedding is an explicit outcome, never a
  silent drop.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Iterable, Mapping

from repro.common.errors import EngineError
from repro.common.timesource import TimeSource, resolve_time_source
from repro.engine.cluster import Reply, _normalize_fields
from repro.events.event import Event
from repro.server.admission import LatencyBudget
from repro.server.framing import read_frame, write_frame
from repro.shard import wire

#: Events per IngestBatch frame (mirrors the router's ingest_max).
INGEST_CHUNK = 256


class ServerBusyError(EngineError):
    """The server shed load instead of accepting a batch."""

    def __init__(
        self, reason: str, retry_after_ms: int, correlations: tuple[int, ...]
    ) -> None:
        super().__init__(
            f"server busy ({reason}): {len(correlations)} events shed, "
            f"retry after {retry_after_ms}ms"
        )
        self.reason = reason
        self.retry_after_ms = retry_after_ms
        self.correlations = correlations


class AsyncRailgunClient:
    """One front-door connection; all methods must run on one loop."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        token: str = "",
        time_source: TimeSource | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self.tenant = tenant
        self._token = token
        self._time = resolve_time_source(time_source)
        self.session = ""
        #: the tenant's latency target, as announced by the HelloAck.
        self.budget: LatencyBudget | None = None
        self.max_in_flight = 0
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._recv_task: asyncio.Task | None = None
        self._next_correlation = 0
        self._next_request = 0
        self._seq = 0
        #: correlation -> (future, event, stream, monotonic send time).
        self._pending: dict[int, tuple[asyncio.Future, Event, str, float]] = {}
        self._ddl_pending: dict[int, asyncio.Future] = {}
        self._stats_pending: dict[int, asyncio.Future] = {}
        self._closed = False

    # -- lifecycle ------------------------------------------------------------

    async def connect(self) -> "AsyncRailgunClient":
        self._reader, self._writer = await asyncio.open_connection(
            self._host, self._port
        )
        await write_frame(
            self._writer, wire.encode(wire.Hello(self.tenant, self._token))
        )
        payload = await read_frame(self._reader)
        if payload is None:
            raise EngineError("server closed the connection during handshake")
        ack = wire.decode(payload)
        if not isinstance(ack, wire.HelloAck):
            raise EngineError(f"expected HelloAck, got {type(ack).__name__}")
        if not ack.ok:
            self._writer.close()
            raise EngineError(f"server refused connection: {ack.error}")
        self.session = ack.session
        self.max_in_flight = ack.max_in_flight
        self.budget = LatencyBudget(ack.p50_budget_ms, ack.p99_budget_ms)
        self._recv_task = asyncio.ensure_future(self._recv_loop())
        return self

    async def close(self) -> None:
        """Say goodbye and release the socket; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self._writer is not None:
            try:
                await write_frame(self._writer, wire.encode(wire.Goodbye()))
            except (ConnectionError, OSError, RuntimeError):
                pass
        if self._recv_task is not None:
            self._recv_task.cancel()
            try:
                await self._recv_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass
        self._fail_all(EngineError("client closed"))

    async def __aenter__(self) -> "AsyncRailgunClient":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- receive plane --------------------------------------------------------

    async def _recv_loop(self) -> None:
        try:
            while True:
                payload = await read_frame(self._reader)
                if payload is None:
                    break
                self._dispatch(wire.decode(payload))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_all(EngineError(f"connection error: {exc}"))
            return
        self._fail_all(EngineError("connection closed by server"))

    def _dispatch(self, msg: object) -> None:
        if isinstance(msg, wire.ReplyBatch):
            now = self._time.monotonic()
            for correlation, topic, results in msg.replies:
                entry = self._pending.pop(correlation, None)
                if entry is None:
                    continue  # raced with a local failure; drop
                future, event, stream, started = entry
                if not future.done():
                    future.set_result(
                        Reply(
                            event=event,
                            stream=stream or topic,
                            results=results or {},
                            latency_ms=int((now - started) * 1000),
                        )
                    )
        elif isinstance(msg, wire.ServerBusy):
            for correlation in msg.correlations:
                entry = self._pending.pop(correlation, None)
                if entry is None:
                    continue
                future = entry[0]
                if not future.done():
                    future.set_exception(
                        ServerBusyError(
                            msg.reason, msg.retry_after_ms, (correlation,)
                        )
                    )
        elif isinstance(msg, wire.DdlReply):
            future = self._ddl_pending.pop(msg.request_id, None)
            if future is None or future.done():
                return
            if msg.ok:
                future.set_result(msg.value)
            else:
                future.set_exception(EngineError(f"ddl failed: {msg.error}"))
        elif isinstance(msg, wire.StatsReply):
            future = self._stats_pending.pop(msg.request_id, None)
            if future is None or future.done():
                return
            try:
                future.set_result(json.loads(bytes(msg.payload).decode()))
            except ValueError as exc:
                future.set_exception(EngineError(f"bad stats payload: {exc}"))
        else:
            self._fail_all(
                EngineError(f"unexpected server frame {type(msg).__name__}")
            )

    def _fail_all(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future, _, _, _ in pending.values():
            if not future.done():
                future.set_exception(error)
        ddl, self._ddl_pending = self._ddl_pending, {}
        for future in ddl.values():
            if not future.done():
                future.set_exception(error)
        stats, self._stats_pending = self._stats_pending, {}
        for future in stats.values():
            if not future.done():
                future.set_exception(error)

    # -- the data path --------------------------------------------------------

    def _as_event(
        self,
        item: Mapping[str, Any] | Event,
        timestamp: int | None,
    ) -> Event:
        if isinstance(item, Event):
            return item
        if timestamp is None:
            raise EngineError(
                "dict sends over TCP require an explicit timestamp: the "
                "cluster's logical clock is not shared with remote clients"
            )
        event = Event(f"{self.session}-{self._seq:09d}", timestamp, item)
        self._seq += 1
        return event

    async def send(
        self,
        stream: str,
        fields: Mapping[str, Any] | None = None,
        timestamp: int | None = None,
        event: Event | None = None,
        busy_retries: int = 0,
    ) -> Reply:
        """Send one event and await its reply."""
        if event is None:
            if fields is None:
                raise EngineError("either fields or event is required")
            event = self._as_event(fields, timestamp)
        replies = await self.send_batch(stream, [event], busy_retries=busy_retries)
        return replies[0]

    async def send_batch(
        self,
        stream: str,
        batch: Iterable[Mapping[str, Any] | Event],
        timestamp: int | None = None,
        busy_retries: int = 0,
    ) -> list[Reply]:
        """Send a batch, await every reply; input order.

        A shed batch (``ServerBusy``) is retried up to ``busy_retries``
        times, sleeping the server's ``retry_after_ms`` between
        attempts and resending only the shed events; exhausted retries
        raise :class:`ServerBusyError` naming what was never accepted.
        """
        events = [self._as_event(item, timestamp) for item in batch]
        correlations = []
        for _ in events:
            correlations.append(self._next_correlation)
            self._next_correlation += 1
        replies: dict[int, Reply] = {}
        outstanding = list(zip(correlations, events))
        attempt = 0
        while outstanding:
            futures = []
            loop = asyncio.get_running_loop()
            started = self._time.monotonic()
            for correlation, event in outstanding:
                future = loop.create_future()
                self._pending[correlation] = (future, event, stream, started)
                futures.append(future)
            await self._ship(stream, outstanding)
            results = await asyncio.gather(*futures, return_exceptions=True)
            shed: list[tuple[int, Event]] = []
            reason, retry_ms = "", 0
            for (correlation, event), result in zip(outstanding, results):
                if isinstance(result, ServerBusyError):
                    shed.append((correlation, event))
                    reason = result.reason
                    retry_ms = max(retry_ms, result.retry_after_ms)
                elif isinstance(result, BaseException):
                    raise result
                else:
                    replies[correlation] = result
            if shed and attempt >= busy_retries:
                raise ServerBusyError(
                    reason, retry_ms, tuple(corr for corr, _ in shed)
                )
            if shed:
                attempt += 1
                # real_delay: honors $RAILGUN_TIME_SCALE compression
                # without blocking the event loop in TimeSource.sleep.
                await asyncio.sleep(self._time.real_delay(retry_ms / 1000.0))
            outstanding = shed
        return [replies[correlation] for correlation in correlations]

    async def _ship(
        self, stream: str, entries: list[tuple[int, Event]]
    ) -> None:
        for start in range(0, len(entries), INGEST_CHUNK):
            chunk = entries[start:start + INGEST_CHUNK]
            frame = wire.encode(
                wire.IngestBatch(
                    stream,
                    [(correlation, event, ()) for correlation, event in chunk],
                )
            )
            await write_frame(self._writer, frame)

    # -- introspection --------------------------------------------------------

    async def stats(self) -> dict:
        """Fetch the server's merged telemetry snapshot (cluster
        processes + the front-door server's own counters) over a
        :class:`~repro.shard.wire.StatsRequest` round trip."""
        request_id = self._request_id()
        future = asyncio.get_running_loop().create_future()
        self._stats_pending[request_id] = future
        await write_frame(
            self._writer, wire.encode(wire.StatsRequest(request_id))
        )
        return await future

    # -- DDL ------------------------------------------------------------------

    async def _ddl(self, request: wire.DdlRequest) -> int:
        future = asyncio.get_running_loop().create_future()
        self._ddl_pending[request.request_id] = future
        await write_frame(self._writer, wire.encode(request))
        return await future

    def _request_id(self) -> int:
        self._next_request += 1
        return self._next_request

    async def create_stream(
        self,
        name: str,
        partitioners: Iterable[str],
        partitions: int = 4,
        schema: object = (),
        with_global_partitioner: bool = False,
    ) -> None:
        """Register a stream (mirrors the facade signature)."""
        await self._ddl(
            wire.DdlRequest(
                self._request_id(),
                "create_stream",
                name=name,
                fields=_normalize_fields(schema),
                names=tuple(partitioners),
                number=partitions,
                flag=with_global_partitioner,
            )
        )

    async def create_metric(self, query_text: str, backfill: bool = False) -> int:
        """Register a metric; returns its id."""
        return await self._ddl(
            wire.DdlRequest(
                self._request_id(), "create_metric",
                text=query_text, flag=backfill,
            )
        )

    async def backfill_metric(self, query_text: str) -> int:
        """Define a metric after the fact: the server replays the
        partition log behind the live writer and splices the metric in
        without pausing ingest; returns its id."""
        return await self._ddl(
            wire.DdlRequest(
                self._request_id(), "backfill_metric", text=query_text,
            )
        )

    async def backfill_status(self, metric_id: int) -> str:
        """``"running"`` until the backfill splice completes."""
        done = await self._ddl(
            wire.DdlRequest(
                self._request_id(), "backfill_status", number=metric_id,
            )
        )
        return "complete" if done else "running"

    async def delete_metric(self, metric_id: int) -> None:
        await self._ddl(
            wire.DdlRequest(
                self._request_id(), "delete_metric", number=metric_id
            )
        )

    async def evolve_schema(self, stream: str, new_fields: object) -> None:
        await self._ddl(
            wire.DdlRequest(
                self._request_id(), "evolve_schema",
                name=stream, fields=_normalize_fields(new_fields),
            )
        )

    async def add_partitioner(self, stream: str, partitioner: str) -> None:
        await self._ddl(
            wire.DdlRequest(
                self._request_id(), "add_partitioner",
                name=stream, text=partitioner,
            )
        )


class RailgunClient:
    """Sync facade over :class:`AsyncRailgunClient`.

    Runs a private event loop on a daemon thread and bridges every call
    with ``run_coroutine_threadsafe`` — one protocol implementation
    serving both call styles. Use as a context manager::

        with RailgunClient(host, port, tenant="acme") as client:
            client.send("tx", event=my_event)
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        token: str = "",
        connect_timeout: float = 10.0,
        call_timeout: float = 120.0,
        time_source: TimeSource | None = None,
    ) -> None:
        self._call_timeout = call_timeout
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def runner() -> None:
            asyncio.set_event_loop(self._loop)
            ready.set()
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=runner, name="railgun-client", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        self._async = AsyncRailgunClient(
            host, port, tenant=tenant, token=token, time_source=time_source
        )
        try:
            self._call(self._async.connect(), timeout=connect_timeout)
        except Exception:
            self._shutdown_loop()
            raise

    def _call(self, coro, timeout: float | None = None):
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout or self._call_timeout)

    def _shutdown_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()

    @property
    def session(self) -> str:
        return self._async.session

    @property
    def budget(self) -> LatencyBudget | None:
        return self._async.budget

    def send(
        self,
        stream: str,
        fields: Mapping[str, Any] | None = None,
        timestamp: int | None = None,
        event: Event | None = None,
        busy_retries: int = 0,
    ) -> Reply:
        return self._call(
            self._async.send(
                stream, fields=fields, timestamp=timestamp, event=event,
                busy_retries=busy_retries,
            )
        )

    def send_batch(
        self,
        stream: str,
        batch: Iterable[Mapping[str, Any] | Event],
        timestamp: int | None = None,
        busy_retries: int = 0,
    ) -> list[Reply]:
        return self._call(
            self._async.send_batch(
                stream, list(batch), timestamp=timestamp,
                busy_retries=busy_retries,
            )
        )

    def create_stream(
        self,
        name: str,
        partitioners: Iterable[str],
        partitions: int = 4,
        schema: object = (),
        with_global_partitioner: bool = False,
    ) -> None:
        self._call(
            self._async.create_stream(
                name, partitioners, partitions=partitions, schema=schema,
                with_global_partitioner=with_global_partitioner,
            )
        )

    def stats(self) -> dict:
        """The server's merged telemetry snapshot; see
        :meth:`AsyncRailgunClient.stats`."""
        return self._call(self._async.stats())

    def create_metric(self, query_text: str, backfill: bool = False) -> int:
        return self._call(self._async.create_metric(query_text, backfill=backfill))

    def backfill_metric(self, query_text: str) -> int:
        return self._call(self._async.backfill_metric(query_text))

    def backfill_status(self, metric_id: int) -> str:
        return self._call(self._async.backfill_status(metric_id))

    def delete_metric(self, metric_id: int) -> None:
        self._call(self._async.delete_metric(metric_id))

    def evolve_schema(self, stream: str, new_fields: object) -> None:
        self._call(self._async.evolve_schema(stream, new_fields))

    def add_partitioner(self, stream: str, partitioner: str) -> None:
        self._call(self._async.add_partitioner(stream, partitioner))

    def close(self) -> None:
        """Close the connection and stop the loop thread; idempotent."""
        if self._loop.is_closed():
            return
        try:
            self._call(self._async.close(), timeout=10.0)
        finally:
            self._shutdown_loop()

    def __enter__(self) -> "RailgunClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
