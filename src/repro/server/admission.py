"""Admission control for the front door: quotas, caps, latency budgets.

The server's contract is *bounded* intake: every accepted event is
tracked until its reply ships, and an ``IngestBatch`` that would push a
tenant (or the whole server) past its limits is answered with an
explicit ``ServerBusy`` frame naming the rejected correlations — never
buffered without bound, never silently dropped. Four checks gate each
batch, cheapest first:

1. **dispatch queue depth** — submissions accepted but not yet routed
   into the cluster; a deep queue means the router thread is behind and
   taking more work only adds latency (the paper's MAD framing: a late
   answer is a wrong answer).
2. **server-wide in-flight cap** — total events accepted and not yet
   replied, across all tenants.
3. **per-tenant in-flight cap** — one tenant cannot occupy the whole
   pipeline.
4. **per-tenant token bucket** — sustained events/second with a burst
   allowance; the refusal carries ``retry_after_ms`` computed from the
   refill rate, so clients back off exactly as long as needed.

Each tenant also carries a :class:`LatencyBudget` (target p50/p99) and a
:class:`~repro.common.percentiles.LatencyRecorder` of observed
server-side latencies; :meth:`AdmissionController.stats` reports
observed vs budget so a breach is visible in monitoring before clients
notice.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.common.percentiles import LatencyRecorder
from repro.common.timesource import TimeSource, resolve_time_source


@dataclass(frozen=True)
class LatencyBudget:
    """Target server-side latency percentiles for a tenant (ms)."""

    p50_ms: float = 50.0
    p99_ms: float = 250.0


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``events_per_sec`` is the sustained token-bucket rate and ``burst``
    its capacity; ``max_in_flight`` caps events accepted but not yet
    replied; ``max_connections`` caps concurrent sockets. ``budget`` is
    the latency target the tenant's observed percentiles are judged
    against in ``stats()``.
    """

    events_per_sec: float = 100_000.0
    burst: int = 8_192
    max_in_flight: int = 4_096
    max_connections: int = 256
    budget: LatencyBudget = LatencyBudget()


@dataclass(frozen=True)
class Decision:
    """The verdict on a connection or batch: admitted, or shed with a
    machine-readable reason and a retry hint."""

    ok: bool
    reason: str = ""
    retry_after_ms: int = 0


ADMITTED = Decision(True)

#: Retry hint for refusals that depend on in-flight work completing
#: (caps, queue depth) rather than on token refill — there is no exact
#: schedule, so hint one router wakeup period.
_BACKOFF_MS = 25


class TokenBucket:
    """A token bucket over an injectable :class:`TimeSource`.

    ``try_take(n)`` returns 0.0 and debits on success, or the seconds
    until ``n`` tokens will have accrued (without debiting) — the
    caller turns that into ``retry_after_ms``. With a
    :class:`~repro.common.timesource.DeterministicTimeSource` every
    refill (and thus every ``retry_after_ms``) is an exact function of
    virtual time — no real sleeping anywhere in the admission tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        time_source: TimeSource | None = None,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(f"rate and burst must be positive: {rate}, {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._time = resolve_time_source(time_source)
        self._tokens = float(burst)
        self._last = self._time.monotonic()

    def _refill(self) -> None:
        now = self._time.monotonic()
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
        self._last = now

    @property
    def tokens(self) -> float:
        """Tokens currently available (after refill)."""
        self._refill()
        return self._tokens

    def try_take(self, n: float = 1.0) -> float:
        self._refill()
        if n <= self._tokens:
            self._tokens -= n
            return 0.0
        return (n - self._tokens) / self.rate


@dataclass
class _TenantState:
    quota: TenantQuota
    bucket: TokenBucket
    connections: int = 0
    in_flight: int = 0
    admitted_events: int = 0
    shed_events: int = 0
    recorder: LatencyRecorder = field(default_factory=LatencyRecorder)


class AdmissionController:
    """Server-wide admission state: caps, per-tenant quotas, latency.

    Thread-safe (one lock around every decision): decisions come from
    the asyncio loop thread while completions arrive on the cluster's
    service thread. Tenants not named in ``quotas`` get
    ``default_quota``; state is created lazily on first contact.
    """

    def __init__(
        self,
        quotas: Mapping[str, TenantQuota] | None = None,
        default_quota: TenantQuota = TenantQuota(),
        max_connections: int = 1_024,
        max_in_flight: int = 16_384,
        max_queue_depth: int = 64,
        time_source: TimeSource | None = None,
    ) -> None:
        self.max_connections = max_connections
        self.max_in_flight = max_in_flight
        self.max_queue_depth = max_queue_depth
        self._quotas = dict(quotas or {})
        self._default_quota = default_quota
        self._time = resolve_time_source(time_source)
        self._tenants: dict[str, _TenantState] = {}
        self._lock = threading.Lock()
        self.connections = 0
        self.in_flight = 0
        self.shed_batches = 0

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota a tenant is (or would be) admitted under."""
        return self._quotas.get(tenant, self._default_quota)

    def _state(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            quota = self.quota_for(tenant)
            state = _TenantState(
                quota,
                TokenBucket(quota.events_per_sec, quota.burst, self._time),
            )
            self._tenants[tenant] = state
        return state

    # -- connections ----------------------------------------------------------

    def connect(self, tenant: str) -> Decision:
        """Admit or refuse a new connection for ``tenant``."""
        with self._lock:
            if self.connections >= self.max_connections:
                return Decision(False, "server-connections", _BACKOFF_MS)
            state = self._state(tenant)
            if state.connections >= state.quota.max_connections:
                return Decision(False, "tenant-connections", _BACKOFF_MS)
            state.connections += 1
            self.connections += 1
            return ADMITTED

    def disconnect(self, tenant: str) -> None:
        """Release a connection previously admitted by :meth:`connect`."""
        with self._lock:
            state = self._state(tenant)
            state.connections = max(0, state.connections - 1)
            self.connections = max(0, self.connections - 1)

    # -- batches --------------------------------------------------------------

    def admit(self, tenant: str, events: int, queue_depth: int = 0) -> Decision:
        """Admit or shed a batch of ``events`` for ``tenant``.

        All-or-nothing: a batch is either fully accepted (and debited
        against the bucket and in-flight counters) or fully shed — the
        caller answers a shed with one ``ServerBusy`` naming every
        correlation in the batch.
        """
        with self._lock:
            state = self._state(tenant)
            if queue_depth >= self.max_queue_depth:
                return self._shed(state, events, "queue-depth", _BACKOFF_MS)
            if self.in_flight + events > self.max_in_flight:
                return self._shed(state, events, "server-in-flight", _BACKOFF_MS)
            if state.in_flight + events > state.quota.max_in_flight:
                return self._shed(state, events, "tenant-in-flight", _BACKOFF_MS)
            wait_s = state.bucket.try_take(events)
            if wait_s > 0:
                return self._shed(
                    state, events, "tenant-rate", max(1, math.ceil(wait_s * 1000))
                )
            state.in_flight += events
            state.admitted_events += events
            self.in_flight += events
            return ADMITTED

    def _shed(
        self, state: _TenantState, events: int, reason: str, retry_ms: int
    ) -> Decision:
        state.shed_events += events
        self.shed_batches += 1
        return Decision(False, reason, retry_ms)

    def complete(
        self, tenant: str, events: int = 1, latency_ms: float | None = None
    ) -> None:
        """Mark admitted events replied; record their server latency."""
        with self._lock:
            state = self._state(tenant)
            state.in_flight = max(0, state.in_flight - events)
            self.in_flight = max(0, self.in_flight - events)
            if latency_ms is not None:
                state.recorder.record(max(latency_ms, 0.0), count=events)

    # -- introspection --------------------------------------------------------

    def stats(self) -> dict:
        """Counters plus observed-vs-budget latency per tenant."""
        with self._lock:
            tenants = {}
            for tenant, state in sorted(self._tenants.items()):
                observed_p50 = (
                    state.recorder.percentile(50.0) if state.recorder.count else 0.0
                )
                observed_p99 = (
                    state.recorder.percentile(99.0) if state.recorder.count else 0.0
                )
                budget = state.quota.budget
                tenants[tenant] = {
                    "connections": state.connections,
                    "in_flight": state.in_flight,
                    "admitted_events": state.admitted_events,
                    "shed_events": state.shed_events,
                    "observed_p50_ms": observed_p50,
                    "observed_p99_ms": observed_p99,
                    "budget_p50_ms": budget.p50_ms,
                    "budget_p99_ms": budget.p99_ms,
                    "within_p50_budget": observed_p50 <= budget.p50_ms,
                    "within_p99_budget": observed_p99 <= budget.p99_ms,
                }
            return {
                "connections": self.connections,
                "in_flight": self.in_flight,
                "shed_batches": self.shed_batches,
                "tenants": tenants,
            }
