"""The async multi-client front door (paper §2, §5).

Railgun's premise is many concurrent client systems scoring against one
cluster under MAD latency SLAs — the paper's fraud-detection deployment
serves "thousands of transactions per second" from independent client
services, each holding a sub-50ms budget. Until now every client of
this reproduction embedded its own cluster facade in-process; this
package turns the cluster into a *service*:

- :mod:`repro.server.server` — an asyncio TCP server multiplexing
  thousands of connections onto one shared cluster facade through a
  bounded dispatch queue and per-connection reply fan-out.
- :mod:`repro.server.client` — :class:`AsyncRailgunClient` (asyncio)
  and :class:`RailgunClient` (sync wrapper), speaking length-prefixed
  ``shard.wire`` frames: DDL, ``send``/``send_batch``, byte-identical
  :class:`~repro.engine.cluster.Reply` objects.
- :mod:`repro.server.admission` — token-bucket per-tenant quotas,
  connection/in-flight caps, queue-depth shedding with explicit
  ``ServerBusy`` frames, and per-tenant :class:`LatencyBudget` targets
  with observed p50/p99 exported via ``stats()``.
"""

from repro.server.admission import (
    AdmissionController,
    Decision,
    LatencyBudget,
    TenantQuota,
    TokenBucket,
)
from repro.server.client import AsyncRailgunClient, RailgunClient, ServerBusyError
from repro.server.server import RailgunServer, ServerHandle, serve_cluster

__all__ = [
    "AdmissionController",
    "Decision",
    "LatencyBudget",
    "TenantQuota",
    "TokenBucket",
    "AsyncRailgunClient",
    "RailgunClient",
    "ServerBusyError",
    "RailgunServer",
    "ServerHandle",
    "serve_cluster",
]
