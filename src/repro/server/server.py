"""The asyncio ingest server: many TCP clients, one cluster.

Architecture (one process, two planes):

- **asyncio loop thread** — accepts connections, parses length-prefixed
  ``shard.wire`` frames, runs admission control, and fans completed
  replies back out per connection. Nothing here touches the cluster.
- **cluster service thread** (the *driver*) — the only thread that
  talks to the cluster facade. For a :class:`ClusterRouter` it runs the
  router's ``service_step`` loop (thread-safe ``submit_batch`` /
  ``submit_call`` hooks, pipelined: many connections' batches are in
  flight in the cluster at once). For the other facades
  (``RailgunCluster``, ``ParallelCluster``) a generic driver executes
  queued submissions one ``send_batch`` at a time — correct, just not
  pipelined.

The handoff between the planes is a bounded dispatch queue (admission's
``max_queue_depth`` sheds load before the queue grows) in one
direction, and ``loop.call_soon_threadsafe`` posts into per-connection
outboxes in the other. A slow reader blocks only its own connection's
writer task (TCP backpressure on ``drain()``); its outbox is bounded by
the tenant's in-flight cap, because events stop being admitted when
their replies stop draining.
"""

from __future__ import annotations

import asyncio
import json
import queue
import threading
import traceback
import uuid
from collections import deque

from repro.common.errors import EngineError, SerdeError
from repro.common.timesource import TimeSource, resolve_time_source
from repro.server.admission import AdmissionController
from repro.server.framing import FrameError, read_frame, write_frame
from repro.shard import wire
from repro.telemetry import MetricsRegistry, merge_snapshots

#: Replies coalesced into one ReplyBatch frame per writer wakeup.
REPLY_CHUNK = 256


def parse_url(url: str) -> tuple[str, int]:
    """Parse ``tcp://host:port`` (the only supported scheme)."""
    if not url.startswith("tcp://"):
        raise EngineError(f"unsupported serve url {url!r}: expected tcp://host:port")
    hostport = url[len("tcp://"):]
    host, sep, port = hostport.rpartition(":")
    if not sep or not host:
        raise EngineError(f"unsupported serve url {url!r}: expected tcp://host:port")
    try:
        return host, int(port)
    except ValueError:
        raise EngineError(f"bad port in serve url {url!r}") from None


# -- cluster drivers ----------------------------------------------------------


class _ClusterDriver(threading.Thread):
    """Base: the single thread allowed to touch the cluster facade."""

    def __init__(self, cluster, time_source: TimeSource | None = None) -> None:
        super().__init__(name="railgun-server-driver", daemon=True)
        self._cluster = cluster
        self._time = resolve_time_source(time_source)
        self._stop_event = threading.Event()
        self._drain = True
        self.error: str | None = None

    def submit_batch(self, stream: str, events: list, on_reply) -> None:
        raise NotImplementedError

    def submit_call(self, fn, on_done) -> None:
        raise NotImplementedError

    def backlog(self) -> int:
        raise NotImplementedError

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        self._drain = drain
        self._stop_event.set()
        self.join(timeout=timeout)


class _RouterDriver(_ClusterDriver):
    """Drives a ``ClusterRouter`` through its thread-safe service hooks;
    submissions from every connection pipeline through the router."""

    def submit_batch(self, stream, events, on_reply) -> None:
        self._cluster.submit_batch(stream, events, on_reply)

    def submit_call(self, fn, on_done) -> None:
        self._cluster.submit_call(fn, on_done)

    def backlog(self) -> int:
        return self._cluster.submission_backlog()

    def run(self) -> None:
        router = self._cluster
        try:
            while not self._stop_event.is_set():
                router.service_step()
            if self._drain:
                deadline = self._time.deadline(10.0)
                while router.service_outstanding() and not deadline.expired():
                    router.service_step()
        except Exception:
            self.error = traceback.format_exc(limit=8)


class _FacadeDriver(_ClusterDriver):
    """Generic driver for the blocking facades: one submission at a
    time through ``send_batch`` (correct everywhere, pipelined
    nowhere). DDL settles with ``run_until_quiet`` so a following send
    lands on rebalanced assignments."""

    def __init__(self, cluster, time_source: TimeSource | None = None) -> None:
        super().__init__(cluster, time_source)
        self._queue: queue.SimpleQueue = queue.SimpleQueue()

    def submit_batch(self, stream, events, on_reply) -> None:
        self._queue.put(("batch", stream, events, on_reply))

    def submit_call(self, fn, on_done) -> None:
        self._queue.put(("call", fn, None, on_done))

    def backlog(self) -> int:
        return self._queue.qsize()

    def run(self) -> None:
        try:
            while True:
                try:
                    kind, a, b, callback = self._queue.get(timeout=0.05)
                except queue.Empty:
                    if self._stop_event.is_set():
                        break
                    continue
                if self._stop_event.is_set() and not self._drain:
                    break
                if kind == "batch":
                    replies = self._cluster.send_batch(a, b)
                    for index, reply in enumerate(replies):
                        callback(index, reply)
                else:
                    try:
                        result = a()
                    except Exception as exc:
                        callback(None, exc)
                        continue
                    settle = getattr(self._cluster, "run_until_quiet", None)
                    if settle is not None:
                        settle()
                    callback(result, None)
        except Exception:
            self.error = traceback.format_exc(limit=8)


def _driver_for(cluster, time_source: TimeSource | None = None) -> _ClusterDriver:
    if hasattr(cluster, "submit_batch") and hasattr(cluster, "service_step"):
        return _RouterDriver(cluster, time_source)
    return _FacadeDriver(cluster, time_source)


# -- connections --------------------------------------------------------------


class _Connection:
    """Loop-thread state for one client socket: identity + outbox."""

    def __init__(self, tenant: str, writer: asyncio.StreamWriter) -> None:
        self.tenant = tenant
        self.writer = writer
        self.session = uuid.uuid4().hex[:12]
        #: completed replies and control frames awaiting the writer
        #: task; bounded transitively by the tenant's in-flight cap.
        self.outbox: deque = deque()
        self.wake = asyncio.Event()
        self.closed = False

    def enqueue_reply(self, correlation: int, stream: str, results: dict) -> None:
        if self.closed:
            return
        self.outbox.append((correlation, stream, results))
        self.wake.set()

    def enqueue_msg(self, msg: object) -> None:
        if self.closed:
            return
        self.outbox.append(msg)
        self.wake.set()

    def close(self) -> None:
        self.closed = True
        self.wake.set()
        try:
            self.writer.close()
        except RuntimeError:
            pass  # loop already closing


class RailgunServer:
    """Accepts front-door connections and multiplexes them onto one
    cluster facade. The server borrows the cluster — ``stop()`` leaves
    it open for its owner (``create_cluster(serve=...)`` wraps the
    cluster's ``close`` to stop the server first)."""

    def __init__(
        self,
        cluster,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: AdmissionController | None = None,
        tokens: dict[str, str] | None = None,
        time_source: TimeSource | None = None,
    ) -> None:
        self._cluster = cluster
        self._host = host
        self._port = port
        self._time = resolve_time_source(time_source)
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(time_source=self._time)
        )
        #: when set, Hello.token must match tokens[tenant] exactly.
        self._tokens = tokens
        self._driver = _driver_for(cluster, self._time)
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._connections: set[_Connection] = set()
        self._tasks: set[asyncio.Task] = set()
        self._stopped = False
        self.address: tuple[str, int] | None = None
        self.metrics = MetricsRegistry("server", time_source=self._time)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "RailgunServer":
        self._loop = asyncio.get_running_loop()
        self._driver.start()
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]
        return self

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, close all.

        ``drain=True`` completes every admitted batch and flushes every
        outbox before the sockets close; ``drain=False`` is the abrupt
        path — clients see EOF on their in-flight requests.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Blocking join of the service thread. Completions it posts via
        # call_soon_threadsafe queue up and flush right after.
        self._driver.stop(drain=drain)
        if drain:
            deadline = self._loop.time() + 10.0
            while (
                any(conn.outbox for conn in self._connections)
                and self._loop.time() < deadline
            ):
                await asyncio.sleep(0.005)
        for conn in list(self._connections):
            conn.close()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._connections.clear()

    def stats(self) -> dict:
        """Admission counters (quotas, latency vs budget) + server-side
        connection/frame counters (a compat view over the registry)."""
        return {
            "admission": self.admission.stats(),
            "server": {
                "connections": len(self._connections),
                "frames_in": self.metrics.counter_value("server_frames_in_total"),
                "frames_out": self.metrics.counter_value("server_frames_out_total"),
                "busy_frames": self.metrics.counter_value("server_frames_busy_total"),
                "dispatch_backlog": self._driver.backlog(),
                "driver_error": self._driver.error,
            },
        }

    def telemetry_snapshot(self) -> dict:
        """The server's own registry snapshot (loop-thread counters);
        merged with the cluster's ``telemetry()`` by ``_on_stats``."""
        self.metrics.gauge_set("server_connections_open", len(self._connections))
        return self.metrics.snapshot()

    # -- per-connection protocol ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        conn: _Connection | None = None
        admitted = False
        tenant = ""
        writer_task: asyncio.Task | None = None
        try:
            payload = await read_frame(reader)
            if payload is None:
                return
            hello = wire.decode(payload)
            if not isinstance(hello, wire.Hello):
                raise FrameError(
                    f"expected Hello, got {type(hello).__name__}"
                )
            tenant = hello.tenant
            if self._tokens is not None and self._tokens.get(tenant) != hello.token:
                await write_frame(
                    writer,
                    wire.encode(wire.HelloAck(False, error="bad tenant or token")),
                )
                return
            decision = self.admission.connect(tenant)
            if not decision.ok:
                await write_frame(
                    writer,
                    wire.encode(
                        wire.HelloAck(False, error=f"refused: {decision.reason}")
                    ),
                )
                return
            admitted = True
            conn = _Connection(tenant, writer)
            quota = self.admission.quota_for(tenant)
            await write_frame(
                writer,
                wire.encode(
                    wire.HelloAck(
                        True,
                        session=conn.session,
                        max_in_flight=quota.max_in_flight,
                        p50_budget_ms=quota.budget.p50_ms,
                        p99_budget_ms=quota.budget.p99_ms,
                    )
                ),
            )
            self._connections.add(conn)
            writer_task = asyncio.ensure_future(self._writer_loop(conn))
            while True:
                payload = await read_frame(reader)
                if payload is None:
                    break
                self.metrics.counter_add("server_frames_in_total")
                msg = wire.decode(payload)
                if isinstance(msg, wire.IngestBatch):
                    self._on_ingest(conn, msg)
                elif isinstance(msg, wire.DdlRequest):
                    self._on_ddl(conn, msg)
                elif isinstance(msg, wire.StatsRequest):
                    self._on_stats(conn, msg)
                elif isinstance(msg, wire.Goodbye):
                    break
                else:
                    raise FrameError(
                        f"unexpected client frame {type(msg).__name__}"
                    )
        except (FrameError, SerdeError, ConnectionError, OSError):
            pass  # protocol violation or peer vanished: drop the connection
        except asyncio.CancelledError:
            # Server stop cancels handler tasks; finish teardown normally
            # so the streams layer doesn't log the cancellation.
            pass
        finally:
            if conn is not None:
                # Flush what the outbox already holds (a clean Goodbye
                # arrives with no replies outstanding), then tear down.
                if not self._stopped:
                    flush_deadline = self._loop.time() + 5.0
                    while conn.outbox and self._loop.time() < flush_deadline:
                        await asyncio.sleep(0.005)
                conn.close()
                self._connections.discard(conn)
            if writer_task is not None:
                writer_task.cancel()
                try:
                    await writer_task
                except (asyncio.CancelledError, Exception):
                    pass
            if admitted:
                self.admission.disconnect(tenant)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass
            self._tasks.discard(task)

    def _on_ingest(self, conn: _Connection, msg: wire.IngestBatch) -> None:
        correlations = [correlation for correlation, _, _ in msg.entries]
        events = [event for _, event, _ in msg.entries]
        if self._driver.error is not None:
            decision_reason, retry = "cluster-error", 0
        else:
            admit_started = self.metrics.now()
            decision = self.admission.admit(
                conn.tenant, len(events), self._driver.backlog()
            )
            self.metrics.observe_since("server_admission_wait_ms", admit_started)
            if decision.ok:
                tenant = conn.tenant
                started = self._time.monotonic()

                def on_reply(index: int, reply) -> None:
                    # Runs on the service thread: account first (the
                    # admission ledger must not leak even if the client
                    # is gone), then post the reply to the loop.
                    elapsed_ms = (self._time.monotonic() - started) * 1000.0
                    self.admission.complete(tenant, 1, elapsed_ms)
                    self.metrics.observe_ms("server_request_ms", elapsed_ms)
                    self._post(
                        conn.enqueue_reply,
                        correlations[index],
                        reply.stream,
                        reply.results,
                    )

                self._driver.submit_batch(msg.stream, events, on_reply)
                return
            decision_reason, retry = decision.reason, decision.retry_after_ms
        self.metrics.counter_add("server_frames_busy_total")
        conn.enqueue_msg(
            wire.ServerBusy(decision_reason, retry, tuple(correlations))
        )

    def _on_ddl(self, conn: _Connection, msg: wire.DdlRequest) -> None:
        def call():
            return self._run_ddl(msg)

        def on_done(result, error) -> None:
            if error is None:
                reply = wire.DdlReply(msg.request_id, True, int(result or 0))
            else:
                reply = wire.DdlReply(
                    msg.request_id, False, 0,
                    f"{type(error).__name__}: {error}",
                )
            self._post(conn.enqueue_msg, reply)

        self._driver.submit_call(call, on_done)

    def _on_stats(self, conn: _Connection, msg: wire.StatsRequest) -> None:
        """Answer a StatsRequest with the merged cluster+server snapshot.

        The cluster's ``telemetry()`` must run on the service thread
        (it reads supervisor state); the server's own registry merges
        in afterwards, on the loop thread that owns it.
        """
        self.metrics.counter_add("server_stats_requests_total")
        telemetry = getattr(self._cluster, "telemetry", None)

        def call():
            return telemetry() if telemetry is not None else {}

        def on_done(result, error) -> None:
            if error is not None:
                merged = {"error": f"{type(error).__name__}: {error}"}
            else:
                # The server's metric names live in their own server_*
                # namespace, so folding its merged form into the
                # cluster's merged form stays exact: counters sum,
                # gauges/histograms never collide.
                merged = dict(result) if isinstance(result, dict) else {}
                own = merge_snapshots([self.telemetry_snapshot()])
                merged["processes"] = sorted(
                    set(merged.get("processes", ())) | set(own["processes"])
                )
                counters = dict(merged.get("counters", {}))
                for key, value in own["counters"].items():
                    counters[key] = counters.get(key, 0) + value
                merged["counters"] = dict(sorted(counters.items()))
                merged["gauges"] = {
                    **merged.get("gauges", {}), **own["gauges"],
                }
                merged["histograms"] = {
                    **merged.get("histograms", {}), **own["histograms"],
                }
                merged.setdefault("schema", own["schema"])
            payload = json.dumps(merged, sort_keys=True).encode("utf-8")
            self._post(
                conn.enqueue_msg, wire.StatsReply(msg.request_id, payload)
            )

        self._driver.submit_call(call, on_done)

    def _run_ddl(self, msg: wire.DdlRequest) -> int:
        cluster = self._cluster
        if msg.op == "create_stream":
            cluster.create_stream(
                msg.name,
                list(msg.names),
                partitions=msg.number,
                schema=msg.fields,
                with_global_partitioner=msg.flag,
            )
            return 0
        if msg.op == "create_metric":
            return cluster.create_metric(msg.text, backfill=msg.flag)
        if msg.op == "backfill_metric":
            # Define-after-the-fact: replay the partition log behind the
            # live writer, then splice. Facade drivers settle the call
            # with run_until_quiet, so the reply means "spliced"; the
            # router driver keeps pumping and clients poll the status.
            return cluster.backfill_metric(msg.text)
        if msg.op == "backfill_status":
            status = cluster.backfill_status(msg.number)
            if status == "unknown":
                raise EngineError(f"unknown backfill metric {msg.number}")
            return 1 if status == "complete" else 0
        if msg.op == "delete_metric":
            cluster.delete_metric(msg.number)
            return 0
        if msg.op == "evolve_schema":
            cluster.evolve_schema(msg.name, msg.fields)
            return 0
        if msg.op == "add_partitioner":
            cluster.add_partitioner(msg.name, msg.text)
            return 0
        raise EngineError(f"unknown ddl op {msg.op!r}")

    def _post(self, fn, *args) -> None:
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop closed during shutdown; the client saw EOF anyway

    async def _writer_loop(self, conn: _Connection) -> None:
        """Ship the outbox: coalesce replies into ReplyBatch frames.

        ``write_frame`` awaits the transport's drain, so a slow reader
        stalls exactly this task — frames queue in the outbox (bounded
        by the tenant's in-flight cap) instead of in kernel buffers.
        """
        try:
            while True:
                await conn.wake.wait()
                conn.wake.clear()
                while conn.outbox:
                    replies = []
                    while (
                        conn.outbox
                        and isinstance(conn.outbox[0], tuple)
                        and len(replies) < REPLY_CHUNK
                    ):
                        correlation, stream, results = conn.outbox.popleft()
                        replies.append((correlation, stream, results))
                    if replies:
                        frame = wire.encode(wire.ReplyBatch(replies))
                    else:
                        frame = wire.encode(conn.outbox.popleft())
                    await write_frame(conn.writer, frame)
                    self.metrics.counter_add("server_frames_out_total")
                if conn.closed:
                    return
        except (ConnectionError, OSError, RuntimeError):
            conn.closed = True  # peer gone; the reader side cleans up


# -- sync hosting -------------------------------------------------------------


class ServerHandle:
    """A server running on its own loop thread, controlled from sync
    code. ``create_cluster(serve=...)`` returns one as ``cluster.server``."""

    def __init__(
        self,
        server: RailgunServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self._server = server
        self._loop = loop
        self._thread = thread
        self._stopped = False

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the server is listening on."""
        return self._server.address

    @property
    def server(self) -> RailgunServer:
        """The underlying server (admission controller, counters)."""
        return self._server

    def stats(self) -> dict:
        return self._server.stats()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the server and its loop thread; idempotent."""
        if self._stopped:
            return
        self._stopped = True
        future = asyncio.run_coroutine_threadsafe(
            self._server.stop(drain=drain), self._loop
        )
        try:
            future.result(timeout=timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=timeout)
            self._loop.close()


def serve_cluster(
    cluster,
    url: str = "tcp://127.0.0.1:0",
    admission: AdmissionController | None = None,
    tokens: dict[str, str] | None = None,
    time_source: TimeSource | None = None,
) -> ServerHandle:
    """Start a front-door server over ``cluster`` on a background loop
    thread and return its :class:`ServerHandle` (``.address`` carries
    the bound port when the url asked for port 0)."""
    host, port = parse_url(url)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        ready.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, name="railgun-server", daemon=True)
    thread.start()
    ready.wait(timeout=10.0)
    server = RailgunServer(
        cluster, host, port, admission=admission, tokens=tokens,
        time_source=time_source,
    )
    future = asyncio.run_coroutine_threadsafe(server.start(), loop)
    try:
        future.result(timeout=10.0)
    except Exception:
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5.0)
        raise
    return ServerHandle(server, loop, thread)
