"""``python -m repro.telemetry --dump``: Prometheus-style exposition.

Without a snapshot file the command runs a tiny in-process demo
workload on :class:`~repro.engine.cluster.RailgunCluster` and dumps its
merged telemetry; with ``--snapshot path.json`` it formats a snapshot
previously saved from any facade's ``telemetry()``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.telemetry.registry import merge_snapshots, to_prometheus


def _demo_snapshot(events: int) -> dict:
    from repro.engine.cluster import create_cluster

    cluster = create_cluster("single", nodes=1, processor_units=2)
    try:
        cluster.create_stream(
            "payments",
            partitioners=["cardId"],
            partitions=4,
            schema=[("cardId", "string"), ("amount", "float")],
        )
        cluster.create_metric(
            "SELECT sum(amount) FROM payments "
            "GROUP BY cardId OVER sliding 5 minutes"
        )
        batch = [
            {"cardId": f"card-{i % 4}", "amount": float(i)}
            for i in range(events)
        ]
        cluster.send_batch("payments", batch)
        cluster.run_until_quiet()
        return cluster.telemetry()
    finally:
        cluster.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.telemetry")
    parser.add_argument(
        "--dump", action="store_true",
        help="print a Prometheus-style text exposition",
    )
    parser.add_argument(
        "--snapshot", metavar="PATH", default=None,
        help="dump this saved telemetry() JSON instead of running the demo",
    )
    parser.add_argument(
        "--events", type=int, default=256,
        help="demo workload size when no snapshot is given",
    )
    args = parser.parse_args(argv)
    if not args.dump:
        parser.error("nothing to do: pass --dump")
    if args.snapshot:
        with open(args.snapshot, encoding="utf-8") as fh:
            snap = json.load(fh)
        if "processes" not in snap:  # single-process snapshot: merge of one
            snap = merge_snapshots([snap])
    else:
        snap = _demo_snapshot(args.events)
    sys.stdout.write(to_prometheus(snap))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
