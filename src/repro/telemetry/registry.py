"""The telemetry plane: one registry per process, one merged snapshot.

Railgun's premise is MAD requirements — latency measured *at the
engine*, not inferred from client stopwatches (§2 of the paper). This
module is the reproduction's engine-side answer: every process
(coordinator, supervisor-owned worker, router frontend, TCP server)
owns a :class:`MetricsRegistry` of counters, gauges, and log-bucketed
histograms (reusing :class:`~repro.common.percentiles.LatencyRecorder`),
stamps durations through the :class:`~repro.common.timesource.TimeSource`
plane (so ``DeterministicTimeSource`` tests see exact values), and
serialises its state as a JSON *snapshot* that piggybacks on existing
reply/ack wire traffic back to the coordinator. The coordinator merges
snapshots — counters sum, gauges take the latest, histograms merge
bucket-by-bucket — into the single stable-schema dict every cluster
facade returns from ``telemetry()``.

Design rules, in order of importance:

- **Observation only.** Nothing in this module may influence reply
  contents; ``tests/test_batch_equivalence.py`` proves replies are
  byte-identical with telemetry on and off.
- **Lock-cheap.** A counter bump is a dict add under one small lock;
  a stage timing is two ``monotonic()`` reads. The perf gate holds
  total overhead on ``engine_ingest_process_4w`` under 5%.
- **Closed catalog.** Every metric name is declared in :data:`METRICS`
  (``<subsystem>_<noun>_<unit>`` snake_case); ``tools/check_telemetry.py``
  rejects unregistered literals at lint time, and annotation names
  arriving over the wire are dropped unless they are in the catalog.

``$RAILGUN_TELEMETRY=0`` disables the *measurement* plane — histogram
timings, trace spans, and snapshot piggybacking. Plain counters and
gauges stay on regardless: they are core accounting (``stats()`` and
``total_messages_processed()`` read them) and cost one dict add.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from typing import Iterable, Iterator

from repro.common import serde
from repro.common.percentiles import LatencyRecorder
from repro.common.timesource import TimeSource, resolve_time_source

#: Environment knob: ``0`` turns off histograms, spans, and snapshot
#: shipping (counters/gauges stay on). Inherited by child processes.
TELEMETRY_ENV = "RAILGUN_TELEMETRY"

#: Version stamped into every snapshot; bump on incompatible change.
SNAPSHOT_SCHEMA = 1

#: Histogram geometry shared by every registry so cross-process merges
#: are exact (LatencyRecorder.merge requires identical geometry).
HISTOGRAM_MIN_MS = 0.001
HISTOGRAM_RELATIVE_ERROR = 0.01

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: The closed metric catalog: name -> (kind, unit, owner stage, help).
#: ``tools/check_telemetry.py`` lints call-site literals against this
#: dict, and docs/OBSERVABILITY.md renders it as the metric table.
METRICS: dict[str, tuple[str, str, str, str]] = {
    # -- facade (coordinator) ------------------------------------------------
    "engine_batches_in_total": (
        COUNTER, "batches", "facade ingest",
        "Batches accepted by a cluster facade's send/send_batch.",
    ),
    "engine_events_in_total": (
        COUNTER, "events", "facade ingest",
        "Events accepted by a cluster facade's send/send_batch.",
    ),
    "engine_replies_out_total": (
        COUNTER, "replies", "facade reply",
        "Replies delivered to facade callers (chaos invariant: equals "
        "engine_events_in_total once the cluster is quiet).",
    ),
    "engine_ingest_ms": (
        HISTOGRAM, "ms", "facade ingest",
        "Routing/journalling a caller batch into per-task queues.",
    ),
    "engine_dispatch_ms": (
        HISTOGRAM, "ms", "facade dispatch",
        "Framing queued records into WorkBatch frames and shipping them.",
    ),
    "engine_collect_ms": (
        HISTOGRAM, "ms", "facade collect",
        "Draining worker/frontend completions (includes remote work time).",
    ),
    "engine_reply_ms": (
        HISTOGRAM, "ms", "facade reply",
        "Merging completions into caller-visible Reply objects.",
    ),
    "engine_batch_ms": (
        HISTOGRAM, "ms", "facade",
        "End-to-end wall time of one send_batch call; the four stage "
        "histograms above decompose this within 10%.",
    ),
    # -- worker --------------------------------------------------------------
    "worker_batches_total": (
        COUNTER, "batches", "worker",
        "WorkBatch frames processed by this worker process.",
    ),
    "worker_records_total": (
        COUNTER, "records", "worker",
        "Records processed by this worker process.",
    ),
    "worker_replies_total": (
        COUNTER, "replies", "worker",
        "Reply payloads emitted by this worker process.",
    ),
    "worker_queue_wait_ms": (
        HISTOGRAM, "ms", "worker",
        "WorkBatch age on arrival: worker receive time minus the "
        "dispatcher's send stamp (system-wide CLOCK_MONOTONIC).",
    ),
    "worker_process_batch_ms": (
        HISTOGRAM, "ms", "worker",
        "TaskProcessor.process_batch wall time (includes reservoir "
        "appends, which are interleaved with window bookkeeping).",
    ),
    "worker_reservoir_append_ms": (
        HISTOGRAM, "ms", "worker",
        "Reservoir append_batch calls inside process_batch (a subset "
        "of worker_process_batch_ms, not an additional stage).",
    ),
    "worker_reply_merge_ms": (
        HISTOGRAM, "ms", "worker",
        "Filtering processor output against reply_from and building "
        "the BatchDone reply list.",
    ),
    # -- supervisor (worker control plane) -----------------------------------
    "supervisor_worker_records_total": (
        COUNTER, "records", "supervisor",
        "Records credited to each worker (label = worker id); the sum "
        "is total_messages_processed().",
    ),
    "supervisor_worker_replies_total": (
        COUNTER, "replies", "supervisor",
        "Replies credited to each worker (label = worker id).",
    ),
    "supervisor_worker_restarts_total": (
        COUNTER, "restarts", "supervisor",
        "Worker process restarts (label = worker id).",
    ),
    "supervisor_checkpoint_acks_total": (
        COUNTER, "acks", "supervisor",
        "Checkpoint acknowledgements received (label = worker id).",
    ),
    "supervisor_checkpoint_acks_late_total": (
        COUNTER, "acks", "supervisor",
        "Checkpoint acks that arrived after their barrier retired "
        "(label = worker id).",
    ),
    "supervisor_outstanding_batches": (
        GAUGE, "batches", "supervisor",
        "WorkBatch frames in flight across all workers right now.",
    ),
    # -- router frontends ----------------------------------------------------
    "frontend_events_ingested_total": (
        COUNTER, "events", "frontend ingest",
        "Events accepted by this frontend process.",
    ),
    "frontend_replies_collected_total": (
        COUNTER, "replies", "frontend reply merge",
        "Worker replies collected by this frontend process.",
    ),
    "frontend_ingest_ms": (
        HISTOGRAM, "ms", "frontend ingest",
        "IngestBatch admission into per-task queues on a frontend.",
    ),
    "frontend_dispatch_ms": (
        HISTOGRAM, "ms", "frontend dispatch",
        "Framing and shipping WorkBatch frames to workers.",
    ),
    "frontend_reply_merge_ms": (
        HISTOGRAM, "ms", "frontend reply merge",
        "Absorbing BatchDone frames into the frontend reply buffer.",
    ),
    "frontend_fsync_ms": (
        HISTOGRAM, "ms", "frontend durability",
        "sync_durable(): durable-bus flush plus consistent-cut write.",
    ),
    # -- router coordinator --------------------------------------------------
    "router_events_routed_total": (
        COUNTER, "events", "router",
        "Events routed to each frontend (label = frontend id).",
    ),
    "router_replies_merged_total": (
        COUNTER, "replies", "router",
        "Replies merged from each frontend (label = frontend id).",
    ),
    "router_frontend_restarts_total": (
        COUNTER, "restarts", "router",
        "Frontend process restarts (label = frontend id).",
    ),
    # -- TCP front door ------------------------------------------------------
    "server_frames_in_total": (
        COUNTER, "frames", "server",
        "Wire frames read from client connections.",
    ),
    "server_frames_out_total": (
        COUNTER, "frames", "server",
        "Wire frames written to client connections.",
    ),
    "server_frames_busy_total": (
        COUNTER, "frames", "server",
        "ServerBusy pushback frames sent under admission pressure.",
    ),
    "server_stats_requests_total": (
        COUNTER, "frames", "server",
        "StatsRequest frames served.",
    ),
    "server_connections_open": (
        GAUGE, "connections", "server",
        "Client connections currently open.",
    ),
    "server_admission_wait_ms": (
        HISTOGRAM, "ms", "server admission",
        "Time an IngestBatch waited for admission credit.",
    ),
    "server_request_ms": (
        HISTOGRAM, "ms", "server",
        "IngestBatch handling time from frame decode to cluster handoff.",
    ),
}

#: Hop names a worker is allowed to report in a BatchDone trace; the
#: receiving side records only catalog histogram names, so a stale or
#: hostile peer cannot grow the registry unboundedly.
_HISTOGRAM_NAMES = frozenset(
    name for name, (kind, _, _, _) in METRICS.items() if kind == HISTOGRAM
)


def telemetry_enabled() -> bool:
    """Whether the measurement plane (histograms/spans/snapshots) is on."""
    return os.environ.get(TELEMETRY_ENV, "1") != "0"


class MetricsRegistry:
    """Process-local metric store with a serialisable snapshot.

    ``process`` names this process in merged snapshots (for example
    ``"coordinator"``, ``"worker:shard-1"``, ``"frontend:fe-0"``); the
    merge dedups by that name, keeping the freshest snapshot per
    process, so the same worker snapshot arriving via two frontends is
    never double-counted.

    Counters and gauges always record (they back ``stats()`` compat
    views and flow-control accounting). Histogram observation and
    :meth:`time_stage` respect ``enabled`` — resolved from
    ``$RAILGUN_TELEMETRY`` at construction unless passed explicitly.
    """

    def __init__(
        self,
        process: str,
        time_source: TimeSource | None = None,
        enabled: bool | None = None,
    ) -> None:
        self.process = process
        self.enabled = telemetry_enabled() if enabled is None else bool(enabled)
        self._time = resolve_time_source(time_source)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyRecorder] = {}
        self._seq = 0

    # -- recording -------------------------------------------------------------

    def counter_add(self, name: str, n: int = 1, label: str | None = None) -> None:
        """Add ``n`` to a counter; ``label`` makes a per-entity series
        (stored flat as ``name[label]``). Always on."""
        key = name if label is None else f"{name}[{label}]"
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + n

    def counter_value(self, name: str, label: str | None = None) -> int:
        key = name if label is None else f"{name}[{label}]"
        with self._lock:
            return self._counters.get(key, 0)

    def counter_sum(self, name: str) -> int:
        """Sum a counter across all labels (plus the unlabelled series)."""
        prefix = f"{name}["
        with self._lock:
            return sum(
                v for k, v in self._counters.items()
                if k == name or k.startswith(prefix)
            )

    def counter_labels(self, name: str) -> dict[str, int]:
        """The per-label values of a labelled counter."""
        prefix = f"{name}["
        with self._lock:
            return {
                k[len(prefix):-1]: v
                for k, v in self._counters.items()
                if k.startswith(prefix) and k.endswith("]")
            }

    def gauge_set(self, name: str, value: float, label: str | None = None) -> None:
        """Set a gauge to its current value. Always on."""
        key = name if label is None else f"{name}[{label}]"
        with self._lock:
            self._gauges[key] = value

    def observe_ms(self, name: str, value_ms: float) -> None:
        """Record one duration sample; no-op when disabled. Values are
        clamped at zero — cross-process monotonic deltas can go
        fractionally negative under clock scaling."""
        if not self.enabled:
            return
        with self._lock:
            recorder = self._histograms.get(name)
            if recorder is None:
                recorder = LatencyRecorder(HISTOGRAM_MIN_MS, HISTOGRAM_RELATIVE_ERROR)
                self._histograms[name] = recorder
            recorder.record(max(0.0, value_ms))

    def observe_since(self, name: str, started: float) -> None:
        """Record ``now - started`` (seconds on this registry's
        :class:`TimeSource`) into histogram ``name``."""
        if not self.enabled:
            return
        self.observe_ms(name, (self._time.monotonic() - started) * 1000.0)

    def now(self) -> float:
        """This registry's monotonic clock (seconds); the stamp to pair
        with :meth:`observe_since`."""
        return self._time.monotonic()

    @contextmanager
    def time_stage(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into histogram ``name``; free when
        disabled."""
        if not self.enabled:
            yield
            return
        started = self._time.monotonic()
        try:
            yield
        finally:
            self.observe_since(name, started)

    def record_hops(self, hops: Iterable[tuple[str, float]]) -> None:
        """Absorb per-hop timings from a wire trace. Unknown names are
        dropped (closed catalog; peers may be older or newer)."""
        if not self.enabled:
            return
        for stage, ms in hops:
            if stage in _HISTOGRAM_NAMES:
                self.observe_ms(stage, ms)

    # -- snapshots -------------------------------------------------------------

    def snapshot(self) -> dict:
        """This process's state as one JSON-safe dict (single-process
        snapshot; see :func:`merge_snapshots` for the merged schema)."""
        with self._lock:
            self._seq += 1
            histograms = {}
            for name, rec in self._histograms.items():
                # No percentiles here on purpose: merge_snapshots
                # recomputes them exactly from the buckets, and raw
                # snapshots are encoded on the worker's hot path.
                histograms[name] = {
                    "count": rec.count,
                    "sum_ms": rec._sum,
                    "max_ms": rec.max_value,
                    "min_ms": rec.min_value,
                    "buckets": {str(i): n for i, n in sorted(rec._buckets.items())},
                }
            return {
                "schema": SNAPSHOT_SCHEMA,
                "process": self.process,
                "seq": self._seq,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": histograms,
            }


def _recorder_from_snapshot(hist: dict) -> LatencyRecorder:
    """Rebuild a LatencyRecorder from a snapshot's bucket dict so merged
    percentiles are computed over the union, not averaged."""
    rec = LatencyRecorder(HISTOGRAM_MIN_MS, HISTOGRAM_RELATIVE_ERROR)
    rec._buckets = {int(i): int(n) for i, n in hist.get("buckets", {}).items()}
    rec._count = int(hist.get("count", 0))
    rec._sum = float(hist.get("sum_ms", 0.0))
    rec._max = float(hist.get("max_ms", 0.0))
    if rec._count:
        rec._min_seen = float(hist.get("min_ms", 0.0))
    return rec


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Merge per-process snapshots into the facade-level schema.

    Snapshots are deduped by ``process`` name keeping the highest
    ``seq`` (the same worker snapshot can arrive via several frontends);
    then counters sum, gauges keep the value from the freshest process
    to report them, and histograms merge bucket-by-bucket so merged
    percentiles are exact over the union of samples.
    """
    latest: dict[str, dict] = {}
    for snap in snapshots:
        if not snap:
            continue
        name = snap.get("process", "?")
        prev = latest.get(name)
        if prev is None or snap.get("seq", 0) >= prev.get("seq", 0):
            latest[name] = snap

    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    recorders: dict[str, LatencyRecorder] = {}
    for name in sorted(latest):
        snap = latest[name]
        for key, value in snap.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + int(value)
        gauges.update(snap.get("gauges", {}))
        for key, hist in snap.get("histograms", {}).items():
            rec = _recorder_from_snapshot(hist)
            if key in recorders:
                recorders[key].merge(rec)
            else:
                recorders[key] = rec

    histograms = {}
    for key in sorted(recorders):
        rec = recorders[key]
        histograms[key] = {
            "count": rec.count,
            "sum_ms": rec._sum,
            "max_ms": rec.max_value,
            "min_ms": rec.min_value,
            "mean_ms": rec.mean,
            "p50_ms": rec.percentile(50.0),
            "p95_ms": rec.percentile(95.0),
            "p99_ms": rec.percentile(99.0),
        }
    return {
        "schema": SNAPSHOT_SCHEMA,
        "processes": sorted(latest),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": histograms,
    }


# -- wire encoding -------------------------------------------------------------


def encode_snapshot(snapshot: dict) -> bytes:
    """One snapshot as canonical JSON bytes (piggybacks on BatchDone)."""
    return json.dumps(snapshot, sort_keys=True, separators=(",", ":")).encode()


def decode_snapshot(data: bytes) -> dict:
    return json.loads(data.decode())


def encode_bundle(parts: Iterable[bytes]) -> bytes:
    """Several already-encoded snapshots as one blob (piggybacks on a
    ReplyBatch last chunk): length-prefixed concatenation, so a
    frontend forwards worker snapshots without re-serialising them."""
    parts = list(parts)
    buf = bytearray()
    serde.write_varint(buf, len(parts))
    for part in parts:
        serde.write_bytes(buf, part)
    return bytes(buf)


def decode_bundle(data: bytes) -> list[dict]:
    view = memoryview(data)
    count, offset = serde.read_varint(view, 0)
    snaps = []
    for _ in range(count):
        part, offset = serde.read_bytes(view, offset)
        snaps.append(decode_snapshot(bytes(part)))
    return snaps


# -- text exposition -----------------------------------------------------------


def _prom_series(key: str) -> str:
    """``name[label]`` -> ``name{label="..."}`` Prometheus syntax."""
    if key.endswith("]") and "[" in key:
        name, _, label = key.partition("[")
        return f'{name}{{label="{label[:-1]}"}}'
    return key


def to_prometheus(merged: dict) -> str:
    """Prometheus-style text exposition of a merged snapshot."""
    lines: list[str] = []
    for key in sorted(merged.get("counters", {})):
        base = key.partition("[")[0]
        _, unit, stage, help_ = METRICS.get(base, (COUNTER, "", "", ""))
        if help_:
            lines.append(f"# HELP {base} {help_}")
            lines.append(f"# TYPE {base} counter")
        lines.append(f"{_prom_series(key)} {merged['counters'][key]}")
    for key in sorted(merged.get("gauges", {})):
        base = key.partition("[")[0]
        _, unit, stage, help_ = METRICS.get(base, (GAUGE, "", "", ""))
        if help_:
            lines.append(f"# HELP {base} {help_}")
            lines.append(f"# TYPE {base} gauge")
        lines.append(f"{_prom_series(key)} {merged['gauges'][key]}")
    for key in sorted(merged.get("histograms", {})):
        hist = merged["histograms"][key]
        _, unit, stage, help_ = METRICS.get(key, (HISTOGRAM, "ms", "", ""))
        if help_:
            lines.append(f"# HELP {key} {help_}")
            lines.append(f"# TYPE {key} summary")
        lines.append(f"{key}_count {hist['count']}")
        lines.append(f"{key}_sum {hist['sum_ms']}")
        for pct in ("p50_ms", "p95_ms", "p99_ms"):
            lines.append(f'{key}{{quantile="0.{pct[1:-3]}"}} {hist[pct]}')
        lines.append(f"{key}_max {hist['max_ms']}")
    return "\n".join(lines) + "\n"
