"""Unified telemetry plane: registries, trace spans, merged snapshots.

See :mod:`repro.telemetry.registry` for the model and
``docs/OBSERVABILITY.md`` for the metric catalog and span lifecycle.
"""

from repro.telemetry.registry import (
    METRICS,
    SNAPSHOT_SCHEMA,
    TELEMETRY_ENV,
    MetricsRegistry,
    decode_bundle,
    decode_snapshot,
    encode_bundle,
    encode_snapshot,
    merge_snapshots,
    telemetry_enabled,
    to_prometheus,
)

__all__ = [
    "METRICS",
    "SNAPSHOT_SCHEMA",
    "TELEMETRY_ENV",
    "MetricsRegistry",
    "decode_bundle",
    "decode_snapshot",
    "encode_bundle",
    "encode_snapshot",
    "merge_snapshots",
    "telemetry_enabled",
    "to_prometheus",
]
