"""Seeded chaos scenarios: messy traffic + a fault schedule, replayable.

A :class:`Scenario` is a *pure function of its seed*: the same seed
always yields the same streams, metrics, event sequence (ids,
timestamps, payloads, batching) and fault schedule. That is the whole
contract — ``python -m repro.chaos --seed N`` replays any failure
identically, and every seed that ever found a bug becomes a named
regression test (``tests/test_chaos.py``).

Traffic composition mirrors the messiest conditions the paper's MAD
requirements demand correctness under (§2's event-time model with
out-of-order arrivals):

- **hot-key skew** — keys drawn from a quadratic ramp, so one key takes
  a large share of the stream (partition imbalance, reply fan-in
  contention);
- **tie bursts** — runs of events sharing one timestamp (the reservoir
  tie path, reply-ordering among equal timestamps);
- **out-of-order bursts** — timestamps jumping back into sealed or
  soon-to-seal windows (rewrite/discard policies, grace periods);
- **duplicate storms** — earlier events re-sent verbatim (read-only
  replies, replay suppression);
- **faults** — worker/frontend crashes, forced checkpoints (which also
  drive durable-log truncation) and drains, scheduled between batches.

The fault *schedule* is deterministic; the fault *timing* inside the
target process tree is not (real processes die mid-whatever) — which is
the point: the one invariant that must survive any interleaving is that
replies are byte-identical to ``create_cluster("single")``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.events.event import Event

#: Fault kinds `generate_scenario` may schedule. ``crash_frontend``
#: only applies on the sharded-frontend topology (no-op elsewhere);
#: ``checkpoint`` exercises checkpoint shipping *and* durable
#: truncation; ``drain`` quiesces the data plane mid-stream;
#: ``add_worker``/``remove_worker`` rebalance the task assignment
#: mid-stream (checkpoint shipping to new owners, route moves under
#: in-flight traffic). ``remove_worker`` is skipped when only one
#: worker remains. ``crash_mid_batch`` SIGKILLs a worker from a side
#: thread *while* ``send_batch`` is in flight — the schedule says which
#: batch, the OS decides which record the victim dies on.
FAULT_KINDS = (
    "crash_worker", "crash_frontend", "checkpoint", "drain",
    "add_worker", "remove_worker", "crash_mid_batch",
)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: fires before batch ``at_batch`` ships."""

    at_batch: int
    kind: str
    #: picks the victim among live workers/frontends (modulo count).
    target: int = 0
    #: after a crash: wait for the restart before resuming traffic
    #: (True exercises recovery-then-traffic, False traffic-while-down).
    settle: bool = False


@dataclass(frozen=True)
class StreamSpec:
    name: str
    partitioners: tuple[str, ...]
    partitions: int
    schema: tuple[tuple[str, str], ...]


@dataclass
class Scenario:
    seed: int
    streams: list[StreamSpec]
    metrics: list[tuple[str, str]] = field(default_factory=list)
    #: (batch index, query) — DDL arriving mid-stream; applied at the
    #: same point on the reference and the target.
    mid_metrics: list[tuple[int, str]] = field(default_factory=list)
    #: per batch: (stream name, events).
    batches: list[tuple[str, list[Event]]] = field(default_factory=list)
    faults: list[Fault] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        return sum(len(events) for _, events in self.batches)

    def describe(self) -> str:
        kinds: dict[str, int] = {}
        for fault in self.faults:
            kinds[fault.kind] = kinds.get(fault.kind, 0) + 1
        fault_text = (
            ", ".join(f"{k}x{v}" for k, v in sorted(kinds.items())) or "none"
        )
        return (
            f"seed={self.seed} streams={len(self.streams)} "
            f"metrics={len(self.metrics)}+{len(self.mid_metrics)} "
            f"events={self.total_events} batches={len(self.batches)} "
            f"faults=[{fault_text}]"
        )


#: Query templates; ``{s}`` is the stream, ``{w}`` a window duration.
#: Only aggregates + windows the query language supports (see
#: tests/test_query_parser.py) — the generator composes, not invents.
_METRIC_TEMPLATES = (
    "SELECT sum(amount), count(*) FROM {s} GROUP BY cardId OVER sliding {w}",
    "SELECT avg(amount) FROM {s} GROUP BY cardId OVER sliding {w}",
    "SELECT max(amount), min(amount) FROM {s} GROUP BY cardId OVER sliding {w}",
    "SELECT count(*) FROM {s} GROUP BY cardId OVER sliding {w}",
)

_WINDOWS = ("30 seconds", "2 minutes", "5 minutes")


def _skewed_key(rng: random.Random, key_count: int) -> str:
    """Quadratic ramp: key 0 is drawn ~sqrt(key_count)× more often than
    the coldest key — hot-key traffic without an external zipf table."""
    return f"c{int(rng.random() ** 2 * key_count)}"


def generate_scenario(
    seed: int,
    *,
    min_events: int = 150,
    max_events: int = 500,
) -> Scenario:
    """The scenario for ``seed`` — deterministic, whole-cloth."""
    rng = random.Random(seed)
    streams = [
        StreamSpec(
            name="tx",
            partitioners=("cardId",),
            partitions=rng.choice((2, 3, 4)),
            schema=(("cardId", "string"), ("amount", "float")),
        )
    ]
    if rng.random() < 0.35:
        streams.append(
            StreamSpec(
                name="alerts",
                partitioners=("cardId",),
                partitions=rng.choice((2, 3)),
                schema=(("cardId", "string"), ("amount", "float")),
            )
        )
    metrics: list[tuple[str, str]] = []
    for spec in streams:
        for _ in range(rng.randrange(1, 3)):
            template = rng.choice(_METRIC_TEMPLATES)
            metrics.append(
                (spec.name,
                 template.format(s=spec.name, w=rng.choice(_WINDOWS)))
            )

    total = rng.randrange(min(min_events, max_events), max_events + 1)
    key_count = rng.choice((5, 8, 20))
    batches: list[tuple[str, list[Event]]] = []
    sent: list[tuple[str, Event]] = []  # duplicate-storm source material
    ts = 1_000
    next_id = 0
    produced = 0
    while produced < total:
        stream = streams[rng.randrange(len(streams))].name
        size = rng.randrange(1, 49)
        events: list[Event] = []
        while len(events) < size and produced < total:
            roll = rng.random()
            if roll < 0.06 and sent:
                # Duplicate storm: re-send 1-4 earlier events verbatim
                # (same id, same timestamp, same payload, same stream).
                for _ in range(rng.randrange(1, 5)):
                    dup_stream, dup = sent[rng.randrange(len(sent))]
                    if dup_stream == stream:
                        events.append(dup)
                        produced += 1
                continue
            ts += rng.choice((0, 0, 1, 2, 5, 40))
            if roll < 0.14:
                # Tie burst: 2-6 events sharing this exact timestamp.
                burst = rng.randrange(2, 7)
                for _ in range(burst):
                    if produced >= total:
                        break
                    event = Event(
                        f"e{next_id}", ts,
                        {"cardId": _skewed_key(rng, key_count),
                         "amount": float(rng.randrange(0, 5000)) / 100.0},
                    )
                    next_id += 1
                    events.append(event)
                    sent.append((stream, event))
                    produced += 1
                continue
            if roll < 0.22:
                # Out-of-order burst: land 100ms-5s in the past (sealed
                # or sealing windows; the ooo policy decides the rest).
                event_ts = max(0, ts - rng.randrange(100, 5_000))
            else:
                event_ts = ts
            event = Event(
                f"e{next_id}", event_ts,
                {"cardId": _skewed_key(rng, key_count),
                 "amount": float(rng.randrange(0, 5000)) / 100.0},
            )
            next_id += 1
            events.append(event)
            sent.append((stream, event))
            produced += 1
        if events:
            batches.append((stream, events))

    mid_metrics: list[tuple[int, str]] = []
    if batches and rng.random() < 0.4:
        at = rng.randrange(len(batches))
        spec = streams[rng.randrange(len(streams))]
        template = rng.choice(_METRIC_TEMPLATES)
        mid_metrics.append(
            (at, template.format(s=spec.name, w=rng.choice(_WINDOWS)))
        )

    faults: list[Fault] = []
    if batches:
        for _ in range(rng.randrange(0, 5)):
            faults.append(
                Fault(
                    at_batch=rng.randrange(len(batches)),
                    kind=rng.choice(FAULT_KINDS),
                    target=rng.randrange(4),
                    settle=rng.random() < 0.5,
                )
            )
    faults.sort(key=lambda fault: (fault.at_batch, fault.kind, fault.target))
    return Scenario(
        seed=seed,
        streams=streams,
        metrics=metrics,
        mid_metrics=mid_metrics,
        batches=batches,
        faults=faults,
    )
