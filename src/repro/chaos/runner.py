"""Run a chaos scenario against a topology and check THE invariant.

The invariant is the repo's one global correctness statement (ROADMAP
north star, held since PR 3): whatever the topology — cooperative
single-process, shard worker processes, sharded frontends, shm
transport, durable logs — and whatever faults land mid-stream, every
reply must be byte-identical to what ``create_cluster("single")``
produces for the same traffic. The runner computes the reference
replies once, replays the identical scenario on the target, and
compares ``reply.event`` / ``reply.results`` pairwise.

Faults are applied through the same facade the failover tests and
``examples/cluster_failover.py`` use (``kill_worker``,
``kill_frontend``, ``checkpoint_now``, ``drain``); a fault kind the
target topology does not support is skipped, not an error — the
schedule is shared across topologies on purpose so one seed replays
everywhere. Post-crash settling waits ride the shared
:class:`~repro.common.timesource.TimeSource`, so ``$RAILGUN_TIME_SCALE``
compresses chaos runs exactly like the fault suites.
"""

from __future__ import annotations

import tempfile
import threading
import traceback
from dataclasses import dataclass, field

from repro.common.timesource import default_time_source
from repro.engine.cluster import create_cluster

from .scenario import Scenario, generate_scenario

#: Topology name -> create_cluster arguments. ``single`` as a *target*
#: re-runs the reference engine (catching nondeterminism in the engine
#: itself); the process topologies are where the faults bite.
TOPOLOGIES = {
    "single": dict(execution="single", nodes=2, processor_units=2),
    "process": dict(execution="process", workers=2),
    "process-2f": dict(execution="process", workers=2, frontends=2),
}

#: Per-worker/frontend crash settle wait: generous because it is
#: virtual-time-compressible, not because restarts are slow.
_SETTLE_TIMEOUT = 30.0


@dataclass
class ChaosResult:
    seed: int
    topology: str
    ok: bool
    detail: str = ""
    scenario: str = ""
    replies: int = 0
    faults_applied: list[str] = field(default_factory=list)
    #: the target cluster's merged telemetry snapshot, captured after
    #: the run settles (printed next to the replay command on FAIL).
    telemetry: dict | None = None

    @property
    def replay_command(self) -> str:
        return (
            f"PYTHONPATH=src python -m repro.chaos "
            f"--seed {self.seed} --topology {self.topology}"
        )


def _build(topology: str, *, transport: str | None, durable_dir: str | None):
    kwargs = dict(TOPOLOGIES[topology])
    execution = kwargs.pop("execution")
    if execution == "process":
        if transport is not None:
            kwargs["transport"] = transport
        if durable_dir is not None:
            kwargs["durable_dir"] = durable_dir
    return create_cluster(execution, **kwargs)


def _apply_ddl(cluster, scenario: Scenario) -> None:
    for spec in scenario.streams:
        cluster.create_stream(
            spec.name,
            list(spec.partitioners),
            partitions=spec.partitions,
            schema=dict(spec.schema),
        )
    for _stream, query in scenario.metrics:
        cluster.create_metric(query)


def _apply_fault(cluster, fault, applied: list[str]) -> None:
    time_source = default_time_source()
    if fault.kind == "crash_worker" and hasattr(cluster, "kill_worker"):
        workers = cluster.worker_ids()
        if not workers:
            return
        victim = workers[fault.target % len(workers)]
        before = cluster.supervisor.restarts
        cluster.kill_worker(victim)
        applied.append(f"crash_worker:{victim}")
        if fault.settle:
            time_source.wait_until(
                lambda: cluster.supervisor.restarts > before,
                timeout=_SETTLE_TIMEOUT,
            )
    elif fault.kind == "crash_frontend" and hasattr(cluster, "kill_frontend"):
        frontends = cluster.frontend_ids()
        if not frontends:
            return
        victim = frontends[fault.target % len(frontends)]
        cluster.kill_frontend(victim)
        applied.append(f"crash_frontend:{victim}")
        # No settle wait: the router repairs dead frontends lazily on
        # the next send touching their slice; traffic-while-down is the
        # interesting path.
    elif fault.kind == "add_worker" and hasattr(cluster, "add_worker"):
        worker_id = cluster.add_worker()
        applied.append(f"add_worker:{worker_id}")
    elif fault.kind == "remove_worker" and hasattr(cluster, "remove_worker"):
        workers = cluster.worker_ids()
        if len(workers) <= 1:
            return  # never drain the pool to zero
        victim = workers[fault.target % len(workers)]
        cluster.remove_worker(victim)
        applied.append(f"remove_worker:{victim}")
    elif fault.kind == "checkpoint" and hasattr(cluster, "checkpoint_now"):
        cluster.checkpoint_now()
        applied.append("checkpoint")
    elif fault.kind == "drain" and hasattr(cluster, "drain"):
        cluster.drain()
        applied.append("drain")


def _arm_mid_batch_kill(cluster, fault, applied: list[str]):
    """SIGKILL a worker from a side thread while ``send_batch`` runs.

    The victim handle is resolved on the caller's thread; the side
    thread only sleeps briefly (virtual-time-scaled) and kills the
    process — no facade state is touched concurrently. Landing after
    the batch is fine: the invariant must hold either way.
    """
    if not hasattr(cluster, "worker_ids"):
        return None
    workers = cluster.worker_ids()
    if not workers:
        return None
    victim = workers[fault.target % len(workers)]
    handle = cluster.supervisor.handles.get(victim)
    if handle is None or not handle.alive:
        return None
    process = handle.process
    time_source = default_time_source()

    def kill() -> None:
        time_source.sleep(0.002 * (fault.target % 4 + 1))
        try:
            process.kill()
        except (ProcessLookupError, OSError):
            pass  # already dead; the schedule shrugs

    thread = threading.Thread(
        target=kill, name="chaos-mid-batch-kill", daemon=True
    )
    thread.start()
    applied.append(f"crash_mid_batch:{victim}")
    return thread


def _collect_replies(
    cluster, scenario: Scenario, *, faults: bool, applied: list[str]
) -> list:
    """Replay the scenario's batches (and faults, if asked) in order."""
    schedule: dict[int, list] = {}
    if faults:
        for fault in scenario.faults:
            schedule.setdefault(fault.at_batch, []).append(fault)
    mid_ddl: dict[int, list[str]] = {}
    for at, query in scenario.mid_metrics:
        mid_ddl.setdefault(at, []).append(query)
    replies = []
    for index, (stream, events) in enumerate(scenario.batches):
        for query in mid_ddl.get(index, ()):
            cluster.create_metric(query)
        killers = []
        for fault in schedule.get(index, ()):
            if fault.kind == "crash_mid_batch":
                thread = _arm_mid_batch_kill(cluster, fault, applied)
                if thread is not None:
                    killers.append(thread)
            else:
                _apply_fault(cluster, fault, applied)
        replies.extend(cluster.send_batch(stream, events))
        for thread in killers:
            thread.join()
    cluster.run_until_quiet()
    return replies


def _first_mismatch(reference: list, candidate: list) -> str:
    if len(reference) != len(candidate):
        return (
            f"reply count diverged: reference={len(reference)} "
            f"target={len(candidate)}"
        )
    for index, (ref, got) in enumerate(zip(reference, candidate)):
        if ref.event != got.event:
            return (
                f"reply[{index}] event diverged: "
                f"reference={ref.event!r} target={got.event!r}"
            )
        if ref.results != got.results:
            return (
                f"reply[{index}] (event {ref.event.event_id!r}) results "
                f"diverged:\n  reference={ref.results!r}\n  "
                f"target={got.results!r}"
            )
    return ""


def run_seed(
    seed: int,
    topology: str = "process",
    *,
    transport: str | None = None,
    durable: bool = False,
    max_events: int = 500,
) -> ChaosResult:
    """Generate the scenario for ``seed``, run it, verdict.

    Never raises for a target-side failure — crashes, hangs surfaced as
    exceptions and reply mismatches all come back as ``ok=False`` with
    the replaying command line in :attr:`ChaosResult.replay_command`.
    """
    if topology not in TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; pick from {sorted(TOPOLOGIES)}"
        )
    scenario = generate_scenario(seed, max_events=max_events)
    result = ChaosResult(
        seed=seed, topology=topology, ok=False, scenario=scenario.describe()
    )

    reference_cluster = create_cluster("single", nodes=2, processor_units=2)
    try:
        _apply_ddl(reference_cluster, scenario)
        reference = _collect_replies(
            reference_cluster, scenario, faults=False, applied=[]
        )
    finally:
        reference_cluster.close()

    tmp = tempfile.TemporaryDirectory(prefix="chaos-") if durable else None
    try:
        cluster = _build(
            topology,
            transport=transport,
            durable_dir=tmp.name if tmp else None,
        )
        try:
            _apply_ddl(cluster, scenario)
            replies = _collect_replies(
                cluster, scenario, faults=True, applied=result.faults_applied
            )
            # Snapshot before close(): worker/frontend registries merge
            # from snapshots piggybacked on reply traffic, so this is
            # the freshest view the coordinator will ever hold.
            try:
                result.telemetry = cluster.telemetry()
            except Exception:
                result.telemetry = None
        finally:
            cluster.close()
    except Exception:
        result.detail = (
            f"target raised:\n{traceback.format_exc(limit=8)}"
        )
        return result
    finally:
        if tmp is not None:
            tmp.cleanup()

    result.replies = len(replies)
    mismatch = _first_mismatch(reference, replies)
    if mismatch:
        result.detail = mismatch
        return result
    mismatch = _telemetry_mismatch(result.telemetry)
    if mismatch:
        result.detail = mismatch
        return result
    result.ok = True
    return result


def _telemetry_mismatch(telemetry: dict | None) -> str:
    """The telemetry plane's own invariant: once a run settles, the
    facade has answered every event it accepted — the merged counters
    must agree, whatever faults landed mid-stream."""
    if not telemetry:
        return ""
    counters = telemetry.get("counters", {})
    events_in = counters.get("engine_events_in_total", 0)
    replies_out = counters.get("engine_replies_out_total", 0)
    if events_in != replies_out:
        return (
            f"telemetry invariant violated after settling: "
            f"engine_events_in_total={events_in} != "
            f"engine_replies_out_total={replies_out}"
        )
    return ""
