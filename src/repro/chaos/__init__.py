"""Property-based chaos harness for the Railgun reproduction.

Seeded scenarios (skewed traffic, out-of-order and tie bursts,
duplicate storms, crash/checkpoint/drain faults) replayed against any
cluster topology, asserting replies byte-identical to
``create_cluster("single")``. ``python -m repro.chaos --seed N``
replays any failure; see ``docs/ARCHITECTURE.md`` ("Time & chaos").
"""

from .runner import TOPOLOGIES, ChaosResult, run_seed
from .scenario import FAULT_KINDS, Fault, Scenario, StreamSpec, generate_scenario

__all__ = [
    "TOPOLOGIES",
    "ChaosResult",
    "run_seed",
    "FAULT_KINDS",
    "Fault",
    "Scenario",
    "StreamSpec",
    "generate_scenario",
]
