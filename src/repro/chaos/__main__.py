"""CLI: ``python -m repro.chaos`` — run chaos seeds, replay failures.

Examples::

    # one seed on the default topology (shard worker processes)
    PYTHONPATH=src python -m repro.chaos --seed 42

    # a CI-style sweep: 25 fresh seeds on every topology
    PYTHONPATH=src python -m repro.chaos --seeds 25 --start 1000 \\
        --topology all

    # replay exactly what a failure printed
    PYTHONPATH=src python -m repro.chaos --seed 1017 --topology process-2f

Exit code 0 iff every (seed, topology) run upheld the invariant; any
failure prints the seed and a ready-to-paste replay command.
"""

from __future__ import annotations

import argparse
import json
import sys

from .runner import TOPOLOGIES, run_seed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description=(
            "seeded chaos runs asserting replies byte-identical to "
            'create_cluster("single")'
        ),
    )
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly this seed")
    parser.add_argument("--seeds", type=int, default=1,
                        help="how many consecutive seeds to run (with --start)")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed when sweeping with --seeds")
    parser.add_argument(
        "--topology",
        default="process",
        help=(
            "target topology: "
            + ", ".join(sorted(TOPOLOGIES))
            + ", or 'all', or a comma-separated list"
        ),
    )
    parser.add_argument("--transport", choices=("socket", "shm"), default=None,
                        help="process-topology transport override")
    parser.add_argument("--durable", action="store_true",
                        help="run the target over a durable (on-disk) log")
    parser.add_argument("--max-events", type=int, default=500,
                        help="upper bound on events per scenario")
    args = parser.parse_args(argv)

    if args.topology == "all":
        topologies = sorted(TOPOLOGIES)
    else:
        topologies = [name.strip() for name in args.topology.split(",")]
    for name in topologies:
        if name not in TOPOLOGIES:
            parser.error(
                f"unknown topology {name!r}; pick from {sorted(TOPOLOGIES)}"
            )

    seeds = [args.seed] if args.seed is not None else [
        args.start + offset for offset in range(args.seeds)
    ]

    failures = 0
    for seed in seeds:
        for topology in topologies:
            result = run_seed(
                seed,
                topology,
                transport=args.transport,
                durable=args.durable,
                max_events=args.max_events,
            )
            status = "ok" if result.ok else "FAIL"
            print(
                f"{status} topology={topology} {result.scenario} "
                f"replies={result.replies} "
                f"faults=[{', '.join(result.faults_applied) or 'none'}]"
            )
            if not result.ok:
                failures += 1
                print(f"  {result.detail}")
                print(f"  replay: {result.replay_command}")
                if result.telemetry:
                    print(
                        "  telemetry: "
                        + json.dumps(result.telemetry, sort_keys=True)
                    )
    if failures:
        print(f"chaos: {failures} failing run(s)", file=sys.stderr)
        return 1
    print(f"chaos: {len(seeds) * len(topologies)} run(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
