"""Window specifications and semantics (paper §2, §3.4).

Railgun supports **sliding** (evaluated per event, always accurate),
**tumbling** (non-overlapping buckets) and **infinite** windows, all
optionally **delayed** by an offset. Hopping windows are deliberately
unsupported by Railgun ("we see them as an approximation of our sliding
windows", §3.4) — they live in :mod:`repro.baselines` for the Flink
comparison.
"""

from repro.windows.spec import WindowKind, WindowSpec

__all__ = ["WindowKind", "WindowSpec"]
