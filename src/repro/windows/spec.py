"""Window specification and boundary arithmetic.

An event with timestamp ``t`` belongs to a window evaluation at
``T_eval`` iff ``T_eval - ws <= t < T_eval`` (paper §2). Evaluations
happen "the moment right after a new event has arrived", so for an
arriving event with timestamp ``T`` the window contents are exactly the
stored events with ``T - ws < t <= T`` — the arriving event always
belongs to its own evaluation (Figure 1's s0 contains e1..e5).

A ``delayed by d`` window shifts both bounds back by ``d`` (§3.4):
contents are ``T - d - ws < t <= T - d``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.clock import format_duration_ms


class WindowKind(enum.Enum):
    """The window families of Figure 4."""

    SLIDING = "sliding"
    TUMBLING = "tumbling"
    INFINITE = "infinite"


@dataclass(frozen=True)
class WindowSpec:
    """A fully-specified window: kind, size and delay offset."""

    kind: WindowKind
    size_ms: int | None = None
    delay_ms: int = 0

    def __post_init__(self) -> None:
        if self.kind is WindowKind.INFINITE:
            if self.size_ms is not None:
                raise ValueError("infinite windows take no size")
        else:
            if self.size_ms is None or self.size_ms <= 0:
                raise ValueError(f"{self.kind.value} window needs a positive size")
        if self.delay_ms < 0:
            raise ValueError(f"window delay cannot be negative: {self.delay_ms}")

    # -- iterator boundaries ---------------------------------------------------

    def head_limit(self, eval_ts: int) -> int:
        """Newest event timestamp included at evaluation time ``eval_ts``."""
        return eval_ts - self.delay_ms

    def tail_limit(self, eval_ts: int) -> int | None:
        """Newest *expired* timestamp at ``eval_ts`` (None: nothing expires).

        Sliding windows expire events older than ``size``; tumbling
        windows expire whole buckets at bucket boundaries; infinite
        windows never expire anything.
        """
        if self.kind is WindowKind.INFINITE:
            return None
        effective = eval_ts - self.delay_ms
        if self.kind is WindowKind.SLIDING:
            return effective - self.size_ms  # type: ignore[operator]
        bucket_start = (effective // self.size_ms) * self.size_ms  # type: ignore[operator]
        return bucket_start - 1

    # -- iterator sharing keys ---------------------------------------------------

    def head_share_key(self) -> tuple:
        """Windows with equal keys share a head iterator (§4.1.1).

        Any window kind with the same delay consumes the same entering
        events ("two real-time sliding windows always share the same
        head iterator").
        """
        return ("head", self.delay_ms)

    def tail_share_key(self) -> tuple | None:
        """Windows with equal keys share a tail iterator (None: no tail)."""
        if self.kind is WindowKind.INFINITE:
            return None
        return ("tail", self.kind.value, self.size_ms, self.delay_ms)

    def describe(self) -> str:
        """Language-level rendering, e.g. ``sliding 5m delayed by 10s``."""
        if self.kind is WindowKind.INFINITE:
            base = "infinite"
        else:
            base = f"{self.kind.value} {format_duration_ms(self.size_ms)}"  # type: ignore[arg-type]
        if self.delay_ms:
            base += f" delayed by {format_duration_ms(self.delay_ms)}"
        return base

    def contains(self, event_ts: int, eval_ts: int) -> bool:
        """Membership test used by reference implementations in tests."""
        upper = self.head_limit(eval_ts)
        if event_ts > upper:
            return False
        lower = self.tail_limit(eval_ts)
        if lower is None:
            return True
        return event_ts > lower
