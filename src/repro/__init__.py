"""Reproduction of *Railgun: managing large streaming windows under MAD
requirements* (Gomes, Oliveirinha, Cardoso, Bizarro — PVLDB 14(1), 2021).

The package is organised bottom-up:

- :mod:`repro.common` — clock, hashing, serde, compression, percentiles.
- :mod:`repro.events` — event model, schemas, workload generators.
- :mod:`repro.lsm` — embedded LSM-tree key-value store (RocksDB stand-in).
- :mod:`repro.reservoir` — the disk-backed event reservoir (paper §4.1.1).
- :mod:`repro.aggregates` — incremental window aggregators (paper §3.4).
- :mod:`repro.windows` — sliding / tumbling / infinite / delayed windows.
- :mod:`repro.query` — the Figure 4 query language and filter expressions.
- :mod:`repro.plan` — shared task-plan DAGs (paper §4.1.2).
- :mod:`repro.messaging` — partitioned log with consumer groups (Kafka
  stand-in, paper §3.3).
- :mod:`repro.engine` — Railgun nodes, processor units, sticky assignment,
  recovery and the cluster harness (paper §3, §4).
- :mod:`repro.baselines` — hopping-window and per-event-rescan engines
  (the Flink comparisons of §5.1).
- :mod:`repro.sim` — discrete-event latency simulation used by the
  experiment harness.
- :mod:`repro.bench` — regenerates every figure of the paper's evaluation.

Quickstart::

    from repro.engine import RailgunCluster

    cluster = RailgunCluster(nodes=2, processor_units=2)
    cluster.create_stream("payments", partitioners=["cardId"], partitions=4)
    cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments "
        "GROUP BY cardId OVER sliding 5 minutes"
    )
    reply = cluster.send("payments", {"cardId": "c1", "amount": 10.0},
                         timestamp=1_000)
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
