"""Incremental window aggregators (paper §3.4 / Figure 4).

Every aggregator supports the two operations a real-time sliding window
needs — ``add`` for events entering the window and ``evict`` for events
leaving it — plus binary state (de)serialization so the state store can
persist them per (metric, entity) key, exactly as the paper stores
aggregation states in RocksDB (§4.1.3):

- ``count``, ``sum``, ``avg`` — scalar accumulators;
- ``min``/``max`` — monotonic deque (Knuth's deque, the paper's [30]);
- ``stdDev`` — Welford's online algorithm with reverse updates ([50]);
- ``last``/``prev`` — most recent / second most recent values;
- ``countDistinct`` — per-value counts in an auxiliary column family.
"""

from repro.aggregates.base import Aggregator, AuxStore, MemoryAuxStore
from repro.aggregates.basic import AvgAggregator, CountAggregator, SumAggregator
from repro.aggregates.distinct import CountDistinctAggregator
from repro.aggregates.lastprev import LastAggregator, PrevAggregator
from repro.aggregates.minmax import MaxAggregator, MinAggregator
from repro.aggregates.registry import (
    AGGREGATOR_NAMES,
    aggregator_requires_numeric,
    create_aggregator,
)
from repro.aggregates.stddev import StdDevAggregator

__all__ = [
    "Aggregator",
    "AuxStore",
    "MemoryAuxStore",
    "CountAggregator",
    "SumAggregator",
    "AvgAggregator",
    "MaxAggregator",
    "MinAggregator",
    "StdDevAggregator",
    "LastAggregator",
    "PrevAggregator",
    "CountDistinctAggregator",
    "AGGREGATOR_NAMES",
    "create_aggregator",
    "aggregator_requires_numeric",
]
