"""Aggregator interface and the auxiliary-store hook.

State life-cycle: the state store materializes an aggregator from bytes
(or fresh), applies ``add``/``evict`` for the events entering/leaving
the window, reads ``result()``, and serializes back. Aggregators are
therefore cheap value objects; all persistence policy lives in
:mod:`repro.state`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from repro.events.event import Event


class AuxStore(ABC):
    """Auxiliary keyed counters for aggregators with non-scalar state.

    ``countDistinct`` "uses an auxiliary column-family in RocksDB to
    hold the counts" (§4.1.3); the state store hands aggregators a view
    scoped to their (metric, entity) prefix.
    """

    @abstractmethod
    def increment(self, key: bytes, delta: int) -> int:
        """Adjust a counter and return the new value (0 deletes it)."""

    @abstractmethod
    def get(self, key: bytes) -> int:
        """Current counter value (0 when absent)."""

    @abstractmethod
    def count_keys(self) -> int:
        """Number of live counters under this scope."""


class MemoryAuxStore(AuxStore):
    """Dict-backed aux store for unit tests and standalone use."""

    def __init__(self) -> None:
        self._counts: dict[bytes, int] = {}

    def increment(self, key: bytes, delta: int) -> int:
        value = self._counts.get(key, 0) + delta
        if value < 0:
            raise ValueError(f"counter for {key!r} went negative: {value}")
        if value == 0:
            self._counts.pop(key, None)
        else:
            self._counts[key] = value
        return value

    def get(self, key: bytes) -> int:
        return self._counts.get(key, 0)

    def count_keys(self) -> int:
        return len(self._counts)


class Aggregator(ABC):
    """An incremental aggregation over a window's contents."""

    #: language-level name, e.g. ``"sum"`` (set by subclasses)
    name: str = "abstract"
    #: True when the aggregator needs an :class:`AuxStore`
    needs_aux: bool = False

    @abstractmethod
    def add(self, value: Any, event: Event) -> None:
        """Fold in an event entering the window."""

    @abstractmethod
    def evict(self, value: Any, event: Event) -> None:
        """Fold out an event leaving the window.

        Callers guarantee every evicted event was previously added.
        """

    @abstractmethod
    def result(self) -> Any:
        """Current aggregation value (None when undefined, e.g. empty avg)."""

    @abstractmethod
    def state_to_bytes(self) -> bytes:
        """Serialize internal state for the state store."""

    @abstractmethod
    def state_from_bytes(self, data: bytes) -> None:
        """Restore internal state written by :meth:`state_to_bytes`."""

    def update_batch(
        self,
        enters: Sequence[tuple[Any, Event]],
        exits: Sequence[tuple[Any, Event]],
    ) -> None:
        """Fold a batch of entering/exiting ``(value, event)`` pairs.

        Evictions are applied before additions, mirroring the state
        store's per-event fold order, so results are identical to calling
        :meth:`evict`/:meth:`add` one pair at a time. Scalar aggregators
        override this to strip the per-event dispatch from the hot loop;
        overrides must preserve the exact per-event fold order (float
        accumulation is order-sensitive).
        """
        for value, event in exits:
            self.evict(value, event)
        for value, event in enters:
            self.add(value, event)

    def bind_aux(self, aux: AuxStore) -> None:
        """Attach the auxiliary store (only for ``needs_aux`` aggregators)."""
        raise NotImplementedError(f"{self.name} does not use an aux store")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(result={self.result()!r})"
