"""min/max via a monotonic deque (the paper's reference [30], Knuth).

The deque holds ``(timestamp, event_id, value)`` candidates in eviction
order with monotone values: for ``max`` the values strictly decrease, so
the front is always the window maximum. In-order adds and evictions are
O(1) amortized; out-of-order adds (late events behind the window head)
take a linear fix-up on the small candidate deque, preserving exactness.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.aggregates.base import Aggregator
from repro.common import serde
from repro.events.event import Event


class _ExtremeAggregator(Aggregator):
    """Shared implementation; ``_keep_left(a, b)`` decides dominance."""

    def __init__(self) -> None:
        self._deque: deque[tuple[int, str, float]] = deque()

    @staticmethod
    def _dominates(keeper: float, candidate: float) -> bool:
        raise NotImplementedError

    def add(self, value: Any, event: Event) -> None:
        if value is None:
            return
        value = float(value)
        entry = (event.timestamp, event.event_id, value)
        if not self._deque or self._deque[-1][0] <= event.timestamp:
            # In-order arrival: pop earlier candidates this one dominates
            # (it expires later than all of them).
            while self._deque and not self._dominates(self._deque[-1][2], value):
                self._deque.pop()
            self._deque.append(entry)
            return
        # Late arrival: place the entry at its timestamp position, drop
        # earlier entries it dominates, skip insertion when a later
        # entry dominates it.
        entries = list(self._deque)
        position = len(entries)
        while position > 0 and entries[position - 1][0] > event.timestamp:
            position -= 1
        if any(self._dominates(e[2], value) or e[2] == value for e in entries[position:]):
            return  # a later-expiring entry is at least as extreme
        while position > 0 and not self._dominates(entries[position - 1][2], value):
            entries.pop(position - 1)
            position -= 1
        entries.insert(position, entry)
        self._deque = deque(entries)

    def update_batch(self, enters, exits) -> None:
        for value, event in exits:
            self.evict(value, event)
        dominates = self._dominates
        candidates = self._deque
        for value, event in enters:
            if value is None:
                continue
            value = float(value)
            if not candidates or candidates[-1][0] <= event.timestamp:
                # In-order arrival: same monotonic pops as add(), with
                # the dispatch and deque lookups hoisted out of the loop.
                while candidates and not dominates(candidates[-1][2], value):
                    candidates.pop()
                candidates.append((event.timestamp, event.event_id, value))
            else:
                self.add(value, event)
                candidates = self._deque  # add() rebuilds the deque when late

    def evict(self, value: Any, event: Event) -> None:
        if value is None or not self._deque:
            return
        front = self._deque[0]
        if front[0] == event.timestamp and front[1] == event.event_id:
            self._deque.popleft()
            return
        # The evicted event is usually not a candidate (it was dominated
        # at insertion time). If it is — possible with out-of-order
        # evictions from a missed-queue — remove it wherever it sits.
        for position, entry in enumerate(self._deque):
            if entry[0] == event.timestamp and entry[1] == event.event_id:
                del self._deque[position]
                return

    def result(self) -> float | None:
        if not self._deque:
            return None
        return self._deque[0][2]

    def candidate_count(self) -> int:
        """Size of the candidate deque (memory-accounting hook)."""
        return len(self._deque)

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        serde.write_varint(buf, len(self._deque))
        for timestamp, event_id, value in self._deque:
            serde.write_varint(buf, timestamp)
            serde.write_str(buf, event_id)
            serde.write_f64(buf, value)
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        self._deque.clear()
        count, offset = serde.read_varint(data, 0)
        for _ in range(count):
            timestamp, offset = serde.read_varint(data, offset)
            event_id, offset = serde.read_str(data, offset)
            value, offset = serde.read_f64(data, offset)
            self._deque.append((timestamp, event_id, value))


class MaxAggregator(_ExtremeAggregator):
    """``max(field)``: deque values strictly decreasing."""

    name = "max"

    @staticmethod
    def _dominates(keeper: float, candidate: float) -> bool:
        return keeper > candidate


class MinAggregator(_ExtremeAggregator):
    """``min(field)``: deque values strictly increasing."""

    name = "min"

    @staticmethod
    def _dominates(keeper: float, candidate: float) -> bool:
        return keeper < candidate
