"""countDistinct via per-value counters in an auxiliary store.

"The countDistinct uses an auxiliary column-family in RocksDB to hold
the counts" (§4.1.3): each distinct field value maps to its in-window
multiplicity; the aggregator's own state is just the number of live
counters, maintained incrementally as counters rise from / fall to zero.
"""

from __future__ import annotations

from typing import Any

from repro.aggregates.base import Aggregator, AuxStore, MemoryAuxStore
from repro.common import serde
from repro.events.event import Event


def _value_key(value: Any) -> bytes:
    """Stable byte encoding of a field value used as the counter key."""
    buf = bytearray()
    serde.write_value(buf, value)
    return bytes(buf)


class CountDistinctAggregator(Aggregator):
    """``countDistinct(field)`` over the window's non-null values."""

    name = "countDistinct"
    needs_aux = True

    def __init__(self) -> None:
        self._distinct = 0
        self._aux: AuxStore = MemoryAuxStore()

    def bind_aux(self, aux: AuxStore) -> None:
        self._aux = aux

    def add(self, value: Any, event: Event) -> None:
        if value is None:
            return
        if self._aux.increment(_value_key(value), 1) == 1:
            self._distinct += 1

    def evict(self, value: Any, event: Event) -> None:
        if value is None:
            return
        if self._aux.increment(_value_key(value), -1) == 0:
            self._distinct -= 1

    def result(self) -> int:
        return self._distinct

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        serde.write_signed_varint(buf, self._distinct)
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        self._distinct, _ = serde.read_signed_varint(data, 0)
