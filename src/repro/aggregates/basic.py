"""count, sum and avg — the scalar accumulators.

These need no auxiliary data beyond their accumulator(s): "an average
requires storing also a counter, while a sum or a count, do not require
any extra data other than the current value" (§4.1.3).
"""

from __future__ import annotations

from typing import Any

from repro.aggregates.base import Aggregator
from repro.common import serde
from repro.events.event import Event


class CountAggregator(Aggregator):
    """``count(field)``: non-null values only (SQL semantics).

    ``count(*)`` is expressed by feeding a constant ``True`` as the
    value for every event (the plan does this when the argument is *).
    """

    name = "count"

    def __init__(self) -> None:
        self._count = 0

    def add(self, value: Any, event: Event) -> None:
        if value is not None:
            self._count += 1

    def evict(self, value: Any, event: Event) -> None:
        if value is not None:
            self._count -= 1

    def update_batch(self, enters, exits) -> None:
        self._count -= sum(1 for value, _ in exits if value is not None)
        self._count += sum(1 for value, _ in enters if value is not None)

    def result(self) -> int:
        return self._count

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        serde.write_signed_varint(buf, self._count)
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        self._count, _ = serde.read_signed_varint(data, 0)


class SumAggregator(Aggregator):
    """``sum(field)`` over numeric values; null values are ignored."""

    name = "sum"

    def __init__(self) -> None:
        self._sum = 0.0

    def add(self, value: Any, event: Event) -> None:
        if value is not None:
            self._sum += float(value)

    def evict(self, value: Any, event: Event) -> None:
        if value is not None:
            self._sum -= float(value)

    def update_batch(self, enters, exits) -> None:
        # Sequential left-to-right folds keep float results bit-identical
        # to the per-event path; ``sum(..., start)`` adds left-to-right.
        total = self._sum
        for value, _ in exits:
            if value is not None:
                total -= float(value)
        self._sum = sum(
            (float(value) for value, _ in enters if value is not None), total
        )

    def result(self) -> float:
        return self._sum

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        serde.write_f64(buf, self._sum)
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        self._sum, _ = serde.read_f64(data, 0)


class AvgAggregator(Aggregator):
    """``avg(field)``; stores sum and count, returns None when empty."""

    name = "avg"

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def add(self, value: Any, event: Event) -> None:
        if value is not None:
            self._sum += float(value)
            self._count += 1

    def evict(self, value: Any, event: Event) -> None:
        if value is not None:
            self._sum -= float(value)
            self._count -= 1

    def update_batch(self, enters, exits) -> None:
        total = self._sum
        count = self._count
        for value, _ in exits:
            if value is not None:
                total -= float(value)
                count -= 1
        for value, _ in enters:
            if value is not None:
                total += float(value)
                count += 1
        self._sum = total
        self._count = count

    def result(self) -> float | None:
        if self._count == 0:
            return None
        return self._sum / self._count

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        serde.write_f64(buf, self._sum)
        serde.write_signed_varint(buf, self._count)
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        self._sum, offset = serde.read_f64(data, 0)
        self._count, _ = serde.read_signed_varint(data, offset)
