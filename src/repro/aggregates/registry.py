"""Aggregator factory — maps Figure 4 names to implementations."""

from __future__ import annotations

from repro.aggregates.base import Aggregator
from repro.aggregates.basic import AvgAggregator, CountAggregator, SumAggregator
from repro.aggregates.distinct import CountDistinctAggregator
from repro.aggregates.lastprev import LastAggregator, PrevAggregator
from repro.aggregates.minmax import MaxAggregator, MinAggregator
from repro.aggregates.stddev import StdDevAggregator
from repro.common.errors import QueryError

_FACTORIES = {
    "count": CountAggregator,
    "sum": SumAggregator,
    "avg": AvgAggregator,
    "stddev": StdDevAggregator,
    "max": MaxAggregator,
    "min": MinAggregator,
    "last": LastAggregator,
    "prev": PrevAggregator,
    "countdistinct": CountDistinctAggregator,
}

#: Canonical (case-sensitive, Figure 4) aggregation names.
AGGREGATOR_NAMES = (
    "count",
    "sum",
    "avg",
    "stdDev",
    "max",
    "min",
    "last",
    "prev",
    "countDistinct",
)

_NUMERIC_ONLY = {"sum", "avg", "stddev", "max", "min"}


def create_aggregator(name: str) -> Aggregator:
    """Instantiate an aggregator by (case-insensitive) name."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise QueryError(
            f"unknown aggregation {name!r}; supported: {', '.join(AGGREGATOR_NAMES)}"
        )
    return factory()


def aggregator_requires_numeric(name: str) -> bool:
    """True for aggregations that only make sense on numeric fields."""
    return name.lower() in _NUMERIC_ONLY
