"""stdDev via Welford's online algorithm with reverse updates.

The paper stores "the three parameters to compute the Welford's online
algorithm" (§4.1.3, reference [50]): count, mean and M2 (the sum of
squared deviations). Eviction applies the algebraic inverse of the
update, which is exact in real arithmetic and numerically stable enough
for windowed use (state resets whenever the window empties, bounding
error accumulation).
"""

from __future__ import annotations

import math
from typing import Any

from repro.aggregates.base import Aggregator
from repro.common import serde
from repro.events.event import Event


class StdDevAggregator(Aggregator):
    """Sample standard deviation of a numeric field over the window."""

    name = "stdDev"

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: Any, event: Event) -> None:
        if value is None:
            return
        value = float(value)
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def evict(self, value: Any, event: Event) -> None:
        if value is None:
            return
        value = float(value)
        if self._count <= 1:
            # Window empties: reset exactly to avoid error accumulation.
            self._count = 0
            self._mean = 0.0
            self._m2 = 0.0
            return
        old_mean = self._mean
        self._count -= 1
        self._mean = (self._count + 1) * old_mean / self._count - value / self._count
        self._m2 -= (value - old_mean) * (value - self._mean)
        if self._m2 < 0.0:
            self._m2 = 0.0  # clamp tiny negative drift from float error

    def result(self) -> float | None:
        if self._count < 2:
            return None
        return math.sqrt(self._m2 / (self._count - 1))

    def variance(self) -> float | None:
        """Sample variance (used by tests for tighter tolerances)."""
        if self._count < 2:
            return None
        return self._m2 / (self._count - 1)

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        serde.write_signed_varint(buf, self._count)
        serde.write_f64(buf, self._mean)
        serde.write_f64(buf, self._m2)
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        self._count, offset = serde.read_signed_varint(data, 0)
        self._mean, offset = serde.read_f64(data, offset)
        self._m2, _ = serde.read_f64(data, offset)
