"""last / prev — positional aggregations over the window.

``last`` is the newest value currently in the window, ``prev`` the one
before it. Because evictions remove the *oldest* events first, tracking
only the two newest (timestamp, id, value) entries is exact: when the
second-newest is evicted the window has shrunk to one event; when the
newest is evicted it is empty.
"""

from __future__ import annotations

from typing import Any

from repro.aggregates.base import Aggregator
from repro.common import serde
from repro.events.event import Event

_Entry = tuple[int, str, object]


class _RecencyAggregator(Aggregator):
    """Shared state tracking the two most recent entries."""

    def __init__(self) -> None:
        self._last: _Entry | None = None
        self._prev: _Entry | None = None

    def add(self, value: Any, event: Event) -> None:
        if value is None:
            return
        entry = (event.timestamp, event.event_id, value)
        if self._last is None or entry[:2] >= self._last[:2]:
            self._prev = self._last
            self._last = entry
        elif self._prev is None or entry[:2] >= self._prev[:2]:
            # Late event newer than prev but older than last.
            self._prev = entry

    def evict(self, value: Any, event: Event) -> None:
        if value is None:
            return
        key = (event.timestamp, event.event_id)
        if self._last is not None and self._last[:2] == key:
            # Evicting the newest: everything older is already gone.
            self._last = None
            self._prev = None
        elif self._prev is not None and self._prev[:2] == key:
            self._prev = None

    def state_to_bytes(self) -> bytes:
        buf = bytearray()
        for entry in (self._last, self._prev):
            if entry is None:
                buf.append(0)
            else:
                buf.append(1)
                serde.write_varint(buf, entry[0])
                serde.write_str(buf, entry[1])
                serde.write_value(buf, entry[2])
        return bytes(buf)

    def state_from_bytes(self, data: bytes) -> None:
        offset = 0
        entries: list[_Entry | None] = []
        for _ in range(2):
            present = data[offset]
            offset += 1
            if not present:
                entries.append(None)
                continue
            timestamp, offset = serde.read_varint(data, offset)
            event_id, offset = serde.read_str(data, offset)
            value, offset = serde.read_value(data, offset)
            entries.append((timestamp, event_id, value))
        self._last, self._prev = entries[0], entries[1]


class LastAggregator(_RecencyAggregator):
    """``last(field)``: newest non-null value in the window."""

    name = "last"

    def result(self) -> Any:
        return None if self._last is None else self._last[2]


class PrevAggregator(_RecencyAggregator):
    """``prev(field)``: second newest non-null value in the window."""

    name = "prev"

    def result(self) -> Any:
        return None if self._prev is None else self._prev[2]
