"""Chunk metadata and the in-memory timestamp index.

"Since files are immutable and events follow a monotonic order given by
their timestamp, we can efficiently support random reads by maintaining
an auxiliary index in-memory, from timestamps to files" (§4.1.1).
Random reads power metric **backfill** — adding a window metric later
and filling it from historical events.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.common import serde


@dataclass(frozen=True)
class ChunkMeta:
    """Location and time-range of one persisted chunk."""

    chunk_id: int
    file_name: str
    offset: int
    length: int
    first_ts: int
    last_ts: int
    count: int

    def to_bytes(self) -> bytes:
        """Serialize for checkpoints."""
        buf = bytearray()
        serde.write_varint(buf, self.chunk_id)
        serde.write_str(buf, self.file_name)
        serde.write_varint(buf, self.offset)
        serde.write_varint(buf, self.length)
        serde.write_varint(buf, self.first_ts)
        serde.write_varint(buf, self.last_ts)
        serde.write_varint(buf, self.count)
        return bytes(buf)

    @staticmethod
    def from_bytes(data: bytes | memoryview, offset: int) -> tuple["ChunkMeta", int]:
        """Inverse of :meth:`to_bytes`."""
        chunk_id, offset = serde.read_varint(data, offset)
        file_name, offset = serde.read_str(data, offset)
        file_offset, offset = serde.read_varint(data, offset)
        length, offset = serde.read_varint(data, offset)
        first_ts, offset = serde.read_varint(data, offset)
        last_ts, offset = serde.read_varint(data, offset)
        count, offset = serde.read_varint(data, offset)
        return (
            ChunkMeta(chunk_id, file_name, file_offset, length, first_ts, last_ts, count),
            offset,
        )


class ReservoirIndex:
    """Ordered index of persisted chunks with timestamp binary search."""

    def __init__(self) -> None:
        self._metas: list[ChunkMeta] = []
        self._first_ts: list[int] = []

    def __len__(self) -> int:
        return len(self._metas)

    def __iter__(self):
        return iter(self._metas)

    def add(self, meta: ChunkMeta) -> None:
        """Register a newly persisted chunk (must follow the previous one)."""
        if self._metas:
            last = self._metas[-1]
            if meta.chunk_id <= last.chunk_id:
                raise ValueError(
                    f"chunk ids must increase: {meta.chunk_id} after {last.chunk_id}"
                )
            if meta.first_ts < last.last_ts:
                raise ValueError(
                    f"chunk time ranges must not overlap: {meta.first_ts} < {last.last_ts}"
                )
        self._metas.append(meta)
        self._first_ts.append(meta.first_ts)

    def get(self, position: int) -> ChunkMeta:
        """Chunk metadata by ordinal position."""
        return self._metas[position]

    def position_of_chunk(self, chunk_id: int) -> int | None:
        """Ordinal position of a chunk id, or None."""
        lo, hi = 0, len(self._metas) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._metas[mid].chunk_id < chunk_id:
                lo = mid + 1
            elif self._metas[mid].chunk_id > chunk_id:
                hi = mid - 1
            else:
                return mid
        return None

    def first_position_covering(self, timestamp: int) -> int:
        """Position of the first chunk whose range may include ``timestamp``.

        Returns the first chunk with ``last_ts >= timestamp``; if the
        timestamp precedes all data, position 0; if it is newer than all
        persisted chunks, ``len(self)`` (i.e. "look in memory").
        """
        # first_ts is sorted; find the last chunk with first_ts <= timestamp.
        pos = bisect.bisect_right(self._first_ts, timestamp) - 1
        if pos < 0:
            return 0
        # The found chunk covers it unless the timestamp is past its end.
        if self._metas[pos].last_ts >= timestamp:
            return pos
        return pos + 1

    def total_events(self) -> int:
        """Total persisted events."""
        return sum(meta.count for meta in self._metas)

    def to_bytes(self) -> bytes:
        """Serialize the whole index (checkpoint metadata)."""
        buf = bytearray()
        serde.write_varint(buf, len(self._metas))
        for meta in self._metas:
            serde.write_bytes(buf, meta.to_bytes())
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReservoirIndex":
        """Inverse of :meth:`to_bytes`."""
        index = cls()
        count, offset = serde.read_varint(data, 0)
        for _ in range(count):
            raw, offset = serde.read_bytes(data, offset)
            meta, _ = ChunkMeta.from_bytes(raw, 0)
            index.add(meta)
        return index
