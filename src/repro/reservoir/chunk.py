"""Chunks: the unit of reservoir I/O.

"Chunks hold multiple events and are kept in-memory until they reach a
fixed size, after which they are closed, serialized, compressed, and
persisted to disk" (§4.1.1). A chunk may pass through a *transition*
state — closed for recent events but still open for late ones — when the
reservoir is configured with an out-of-order grace period.
"""

from __future__ import annotations

import bisect
import enum

from repro.common import serde
from repro.common.compression import Codec, compress_with_header, decompress_with_header
from repro.common.errors import SerdeError
from repro.events.event import Event
from repro.events.schema import Schema


class ChunkState(enum.Enum):
    """Life-cycle of a chunk."""

    OPEN = "open"
    TRANSITION = "transition"
    CLOSED = "closed"


class Chunk:
    """An in-memory, timestamp-ordered run of events."""

    __slots__ = (
        "chunk_id",
        "schema_id",
        "state",
        "events",
        "closed_at_ms",
        "_approx_bytes",
    )

    def __init__(self, chunk_id: int, schema_id: int) -> None:
        self.chunk_id = chunk_id
        self.schema_id = schema_id
        self.state = ChunkState.OPEN
        self.events: list[Event] = []
        self.closed_at_ms: int | None = None
        self._approx_bytes = 0

    def __len__(self) -> int:
        return len(self.events)

    @property
    def first_ts(self) -> int:
        """Timestamp of the oldest event (chunk must be non-empty)."""
        return self.events[0].timestamp

    @property
    def last_ts(self) -> int:
        """Timestamp of the newest event (chunk must be non-empty)."""
        return self.events[-1].timestamp

    @property
    def approximate_bytes(self) -> int:
        """Rough in-memory payload size used for the close threshold."""
        return self._approx_bytes

    def append(self, event: Event) -> int:
        """Insert an event keeping timestamp order; returns its position.

        In-order arrivals append at the end in O(1); a late event inside
        the chunk's range is inserted at its sorted position (the caller
        then fixes up any iterators that already passed that position).
        """
        if self.state is ChunkState.CLOSED:
            raise ValueError(f"chunk {self.chunk_id} is closed")
        if not self.events or event.timestamp >= self.events[-1].timestamp:
            self.events.append(event)
            position = len(self.events) - 1
        else:
            position = bisect.bisect_right(
                [e.timestamp for e in self.events], event.timestamp
            )
            self.events.insert(position, event)
        self._approx_bytes += 32 + 8 * event.field_count()
        return position

    def append_tail(self, event: Event) -> None:
        """O(1) append of an event known to be in-order (open chunk only).

        Equivalent to :meth:`append` when ``event.timestamp >= last_ts``;
        the batched reservoir path uses it to skip the ordering probe.
        """
        self.events.append(event)
        self._approx_bytes += 32 + 8 * event.field_count()

    def extend_tail(self, events: list[Event]) -> None:
        """Bulk :meth:`append_tail`: ``events`` must be in timestamp order
        and not precede the current tail."""
        self.events.extend(events)
        self._approx_bytes += sum(32 + 8 * e.field_count() for e in events)

    def mark_transition(self, now_ms: int) -> None:
        """Close the chunk for recent events but keep it open for late ones."""
        if self.state is not ChunkState.OPEN:
            raise ValueError(f"chunk {self.chunk_id} is not open")
        self.state = ChunkState.TRANSITION
        self.closed_at_ms = now_ms

    def mark_closed(self) -> None:
        """Finalize the chunk; it becomes immutable."""
        self.state = ChunkState.CLOSED

    # -- serialization --------------------------------------------------------

    def serialize(self, schema: Schema, codec: Codec) -> bytes:
        """Encode and compress the chunk for persistence.

        Wire format (pre-compression)::

            varint chunk_id | varint schema_id | varint count |
            varint first_ts | count x event

        The compressed payload is prefixed with the codec wire id.
        """
        if schema.schema_id != self.schema_id:
            raise SerdeError(
                f"chunk {self.chunk_id} encoded with schema {self.schema_id}, "
                f"got schema {schema.schema_id}"
            )
        buf = bytearray()
        serde.write_varint(buf, self.chunk_id)
        serde.write_varint(buf, self.schema_id)
        serde.write_varint(buf, len(self.events))
        serde.write_varint(buf, self.events[0].timestamp if self.events else 0)
        for event in self.events:
            schema.encode_event(event, buf)
        return compress_with_header(codec, bytes(buf))

    @staticmethod
    def deserialize(payload: bytes, schema_lookup) -> "Chunk":
        """Inverse of :meth:`serialize`.

        ``schema_lookup`` maps a schema id to a :class:`Schema` — the
        schema-registry hook that makes old chunks readable after the
        event schema evolves.
        """
        raw = decompress_with_header(payload)
        offset = 0
        chunk_id, offset = serde.read_varint(raw, offset)
        schema_id, offset = serde.read_varint(raw, offset)
        count, offset = serde.read_varint(raw, offset)
        _first_ts, offset = serde.read_varint(raw, offset)
        schema = schema_lookup(schema_id)
        chunk = Chunk(chunk_id, schema_id)
        for _ in range(count):
            event, offset = schema.decode_event(raw, offset)
            chunk.events.append(event)
        chunk.mark_closed()
        return chunk

    def __repr__(self) -> str:
        span = f"[{self.first_ts}..{self.last_ts}]" if self.events else "[]"
        return (
            f"Chunk(id={self.chunk_id}, state={self.state.value}, "
            f"n={len(self.events)}, ts={span})"
        )
