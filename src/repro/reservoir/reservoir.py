"""The event reservoir facade (paper §4.1.1).

Responsibilities:

- **Append path**: dedup by event id against in-memory chunks; apply the
  out-of-order policy against closed data; insert into the open (or a
  transition) chunk; close/persist chunks when they reach size.
- **Storage layout**: closed chunks are serialized, compressed and
  appended to append-only segment files that seal at a fixed chunk
  count; an in-memory timestamp index supports random reads (backfill).
- **Iterators**: forward cursors for window heads/tails, fed through an
  eagerly-prefetching chunk cache.
- **Checkpoint/restore**: the persisted files plus a small metadata blob
  (index, in-memory chunks, dedup ids) reconstruct the reservoir
  exactly; the engine replays newer events from the messaging layer.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Sequence

from repro.common import serde
from repro.common.compression import Codec, codec_by_name
from repro.common.errors import SchemaError, StorageError
from repro.common.storage import MemoryStorage, StorageBackend
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.reservoir.cache import ChunkCache
from repro.reservoir.chunk import Chunk, ChunkState
from repro.reservoir.index import ChunkMeta, ReservoirIndex
from repro.reservoir.iterator import ReservoirIterator


class OutOfOrderPolicy(enum.Enum):
    """What to do with events older than the last closed chunk (§4.1.1)."""

    DISCARD = "discard"
    REWRITE = "rewrite"


class AppendStatus(enum.Enum):
    """Outcome of :meth:`EventReservoir.append`."""

    APPENDED = "appended"
    DUPLICATE = "duplicate"
    DISCARDED = "discarded"
    REWRITTEN = "rewritten"


class AppendResult:
    """The stored event (possibly rewritten) and what happened to it.

    A plain slotted class rather than a dataclass: one instance is built
    per appended event, so construction cost is hot-path cost.
    """

    __slots__ = ("status", "event")

    def __init__(self, status: AppendStatus, event: Event | None) -> None:
        self.status = status
        self.event = event

    @property
    def stored(self) -> bool:
        """True when the event (possibly rewritten) entered the reservoir."""
        return self.status in (AppendStatus.APPENDED, AppendStatus.REWRITTEN)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AppendResult):
            return NotImplemented
        return self.status is other.status and self.event == other.event

    def __hash__(self) -> int:
        return hash((self.status, self.event))

    def __repr__(self) -> str:
        return f"AppendResult(status={self.status!r}, event={self.event!r})"


@dataclass
class ReservoirConfig:
    """Reservoir tuning knobs."""

    chunk_max_events: int = 512
    file_max_chunks: int = 64
    cache_capacity: int = 220  # the paper's Figure 9b setting
    codec: str = "zlib:6"
    ooo_policy: OutOfOrderPolicy = OutOfOrderPolicy.REWRITE
    transition_grace_ms: int = 0
    prefetch: bool = True


@dataclass
class ReservoirStats:
    """Counters for tests, benches and the latency cost model."""

    appended: int = 0
    duplicates: int = 0
    ooo_discarded: int = 0
    ooo_rewritten: int = 0
    ooo_inserts: int = 0  # late events inserted into in-memory chunks
    chunks_closed: int = 0
    files_sealed: int = 0
    demand_chunk_loads: int = 0
    prefetch_chunk_loads: int = 0


class EventReservoir:
    """Disk-backed event store with shared window iterators."""

    def __init__(
        self,
        schema_registry: SchemaRegistry,
        storage: StorageBackend | None = None,
        config: ReservoirConfig | None = None,
    ) -> None:
        self.registry = schema_registry
        self.storage = storage if storage is not None else MemoryStorage()
        self.config = config if config is not None else ReservoirConfig()
        self._codec: Codec = codec_by_name(self.config.codec)
        self.cache = ChunkCache(self.config.cache_capacity)
        self.index = ReservoirIndex()
        self.stats = ReservoirStats()
        self._iterators: list[ReservoirIterator] = []
        self._dedup: dict[str, int] = {}  # event id -> chunk id (in-memory only)
        self._transitions: list[Chunk] = []
        self._next_chunk_id = 0
        self._file_seq = 0
        self._chunks_in_file = 0
        self._current_file: str | None = None
        self._max_seen_ts = -1
        self._open = self._new_open_chunk()

    # -- append path -----------------------------------------------------------

    def append(self, event: Event) -> AppendResult:
        """Store an event, applying dedup and the out-of-order policy."""
        self.registry.current().validate_event(event)
        self._roll_open_chunk_on_schema_change()
        if event.event_id in self._dedup:
            self.stats.duplicates += 1
            return AppendResult(AppendStatus.DUPLICATE, None)
        if event.timestamp > self._max_seen_ts:
            self._max_seen_ts = event.timestamp
            self._expire_transitions()

        status = AppendStatus.APPENDED
        horizon = self._closed_horizon()
        if event.timestamp <= horizon:
            if self.config.ooo_policy is OutOfOrderPolicy.DISCARD:
                self.stats.ooo_discarded += 1
                return AppendResult(AppendStatus.DISCARDED, None)
            event = event.with_timestamp(self._rewrite_target(horizon))
            status = AppendStatus.REWRITTEN
            self.stats.ooo_rewritten += 1

        chunk = self._target_chunk(event.timestamp)
        position = chunk.append(event)
        at_tail = chunk is self._open and position == len(chunk.events) - 1
        if not at_tail:
            self.stats.ooo_inserts += 1
            self._fixup_iterators(chunk.chunk_id, position, event)
        self._dedup[event.event_id] = chunk.chunk_id
        self.stats.appended += 1
        if chunk is self._open and len(chunk) >= self.config.chunk_max_events:
            self._close_open_chunk()
        return AppendResult(status, event)

    def append_batch(self, events: Sequence[Event]) -> list[AppendResult]:
        """Store a batch; equivalent to ``[self.append(e) for e in events]``.

        The per-event bookkeeping is amortized across the batch: the
        schema-roll check runs once (the registry cannot change
        mid-batch), and runs of fresh in-order events — timestamp at or
        above ``max_seen_ts`` (equal-timestamp tie groups included), id
        unseen — skip the horizon/out-of-order/chunk-targeting probes
        entirely and bulk-extend the open chunk's tail, with one
        expiry/flush decision per batch. Events that are late,
        duplicated, or tie a timestamp something already sealed at fall
        back to :meth:`append`, so results stay byte-identical to the
        per-event path for every input. With an out-of-order grace
        period the per-event expiry cadence is kept (transition chunks
        must persist mid-batch exactly when the per-event path would
        persist them), amortizing only the schema and targeting checks.
        """
        results: list[AppendResult] = []
        if not events:
            return results
        self._roll_open_chunk_on_schema_change()
        if self.config.transition_grace_ms == 0 and not self._transitions:
            self._append_batch_bulk(events, results)
        else:
            self._append_batch_graced(events, results)
        return results

    def _append_batch_bulk(
        self, events: Sequence[Event], results: list[AppendResult]
    ) -> None:
        """Batch append when no transition chunks can exist (grace 0)."""
        schema = self.registry.current()
        chunk_max = self.config.chunk_max_events
        dedup = self._dedup
        stats = self.stats
        appended_status = AppendStatus.APPENDED
        index, count = 0, len(events)
        while index < count:
            event = events[index]
            timestamp = event.timestamp
            # Equal-timestamp ties ride the slab path too: a tie lands
            # at the open chunk's tail exactly like a fresh event, as
            # long as nothing sealed at (or rewrote past) its timestamp.
            # A fresh timestamp can still sit at or below the closed
            # horizon when rewritten events sealed a chunk *ahead* of
            # ``max_seen_ts``; those — and ties under a rewritten-ahead
            # open tail — take the per-event path so the out-of-order
            # policy applies exactly as append() would.
            open_events = self._open.events
            tie_at_tail = timestamp == self._max_seen_ts and (
                not open_events or open_events[-1].timestamp <= timestamp
            )
            if (
                (timestamp <= self._max_seen_ts and not tie_at_tail)
                or event.event_id in dedup
                or timestamp <= self._closed_horizon()
            ):
                results.append(self.append(event))
                index += 1
                continue
            # Scan ahead: the longest run of fresh, non-decreasing,
            # unique events starting here (tie groups stay in the run).
            run_end = index + 1
            last_ts = timestamp
            run_ids = {event.event_id}
            while run_end < count:
                candidate = events[run_end]
                next_ts = candidate.timestamp
                next_id = candidate.event_id
                if next_ts < last_ts or next_id in dedup or next_id in run_ids:
                    break
                last_ts = next_ts
                run_ids.add(next_id)
                run_end += 1
            run = events[index:run_end] if (index, run_end) != (0, count) else events
            index = run_end
            # Apply the run in open-chunk-sized slabs: bulk validate,
            # bulk extend, one close decision per slab.
            start, run_len = 0, len(run)
            while start < run_len:
                if run[start].timestamp <= self._closed_horizon():
                    # A chunk sealed mid-run exactly at a tie timestamp:
                    # the remaining tie members are below the horizon
                    # now and must follow the out-of-order policy.
                    for late in run[start:]:
                        results.append(self.append(late))
                    break
                open_chunk = self._open
                open_events = open_chunk.events
                space = chunk_max - len(open_events)
                stop = min(start + space, run_len) if space > 0 else start + 1
                slab = run[start:stop] if (start, stop) != (0, run_len) else run
                try:
                    schema.validate_events(slab)
                except SchemaError:
                    # Mirror per-event state on failure: append() stores
                    # the valid prefix, then raises at the bad event.
                    for unchecked in slab:
                        results.append(self.append(unchecked))
                    raise  # pragma: no cover — append() raised above
                open_chunk.extend_tail(slab)
                chunk_id = open_chunk.chunk_id
                dedup.update((e.event_id, chunk_id) for e in slab)
                self._max_seen_ts = slab[-1].timestamp
                stats.appended += len(slab)
                results.extend(AppendResult(appended_status, e) for e in slab)
                if len(open_events) >= chunk_max:
                    self._close_open_chunk()
                start = stop

    def _append_batch_graced(
        self, events: Sequence[Event], results: list[AppendResult]
    ) -> None:
        """Batch append preserving the per-event transition-expiry cadence."""
        schema = self.registry.current()
        chunk_max = self.config.chunk_max_events
        dedup = self._dedup
        stats = self.stats
        open_chunk = self._open
        for event in events:
            timestamp = event.timestamp
            if (
                timestamp <= self._max_seen_ts
                or event.event_id in dedup
                or timestamp <= self._closed_horizon()
            ):
                results.append(self.append(event))
                open_chunk = self._open
                continue
            schema.validate_event(event)
            self._max_seen_ts = timestamp
            if self._transitions:
                self._expire_transitions()
            open_chunk.append_tail(event)
            dedup[event.event_id] = open_chunk.chunk_id
            stats.appended += 1
            if len(open_chunk.events) >= chunk_max:
                self._close_open_chunk()
                open_chunk = self._open
            results.append(AppendResult(AppendStatus.APPENDED, event))

    def _roll_open_chunk_on_schema_change(self) -> None:
        current = self.registry.current()
        if self._open.schema_id != current.schema_id:
            if len(self._open):
                self._close_open_chunk()
            else:
                self._open.schema_id = current.schema_id

    def _closed_horizon(self) -> int:
        """Newest timestamp already sealed into immutable storage."""
        if len(self.index) == 0:
            return -1
        return self.index.get(len(self.index) - 1).last_ts

    def _rewrite_target(self, horizon: int) -> int:
        """Rewrite a too-late timestamp to the first in-memory one (§4.1.1)."""
        for chunk in self._transitions:
            if len(chunk):
                return max(chunk.first_ts, horizon + 1)
        if len(self._open):
            return max(self._open.first_ts, horizon + 1)
        return horizon + 1

    def _target_chunk(self, timestamp: int) -> Chunk:
        """The in-memory chunk whose time range should hold ``timestamp``."""
        for chunk in self._transitions:
            if len(chunk) and timestamp <= chunk.last_ts:
                return chunk
        if len(self._open) and timestamp <= self._open.last_ts:
            return self._open
        return self._open

    def _fixup_iterators(self, chunk_id: int, position: int, event: Event) -> None:
        for iterator in self._iterators:
            iterator.note_insert(chunk_id, position, event)

    # -- chunk life-cycle --------------------------------------------------------

    def _new_open_chunk(self) -> Chunk:
        chunk = Chunk(self._next_chunk_id, self.registry.current().schema_id)
        self._next_chunk_id += 1
        return chunk

    def _close_open_chunk(self) -> None:
        chunk = self._open
        self._open = self._new_open_chunk()
        if not len(chunk):
            return
        if self.config.transition_grace_ms > 0:
            chunk.mark_transition(self._max_seen_ts)
            self._transitions.append(chunk)
        else:
            self._persist_chunk(chunk)

    def _expire_transitions(self) -> None:
        grace = self.config.transition_grace_ms
        while self._transitions:
            chunk = self._transitions[0]
            if chunk.closed_at_ms is None:
                break
            if self._max_seen_ts - chunk.closed_at_ms < grace:
                break
            self._transitions.pop(0)
            self._persist_chunk(chunk)

    def flush(self) -> None:
        """Force-close and persist every in-memory chunk (shutdown path)."""
        for chunk in self._transitions:
            self._persist_chunk(chunk)
        self._transitions.clear()
        if len(self._open):
            chunk = self._open
            self._open = self._new_open_chunk()
            self._persist_chunk(chunk)

    def _persist_chunk(self, chunk: Chunk) -> None:
        chunk.mark_closed()
        schema = self.registry.get(chunk.schema_id)
        payload = chunk.serialize(schema, self._codec)
        record = bytearray()
        serde.write_u32(record, serde.crc32_of(payload))
        serde.write_bytes(record, payload)
        file_name = self._file_for_next_chunk()
        offset = self.storage.append(file_name, bytes(record))
        self.index.add(
            ChunkMeta(
                chunk_id=chunk.chunk_id,
                file_name=file_name,
                offset=offset,
                length=len(record),
                first_ts=chunk.first_ts,
                last_ts=chunk.last_ts,
                count=len(chunk),
            )
        )
        # Keep the freshly closed chunk warm: tail iterators of short
        # windows will reach it soon.
        self.cache.put_demand(chunk.chunk_id, chunk.events)
        for event in chunk.events:
            self._dedup.pop(event.event_id, None)
        self.stats.chunks_closed += 1
        self._chunks_in_file += 1
        if self._chunks_in_file >= self.config.file_max_chunks:
            self.storage.seal(file_name)
            self.stats.files_sealed += 1
            self._current_file = None
            self._chunks_in_file = 0

    def _file_for_next_chunk(self) -> str:
        if self._current_file is None:
            self._current_file = f"res-{self._file_seq:06d}.seg"
            self._file_seq += 1
            self.storage.create(self._current_file)
        return self._current_file

    # -- chunk access (iterator support) ----------------------------------------

    def has_event_id(self, event_id: str) -> bool:
        """True when ``event_id`` is a known (in-memory) duplicate."""
        return event_id in self._dedup

    def chunk_can_grow(self, chunk_id: int) -> bool:
        """True for the open chunk (it still receives in-order appends)."""
        return chunk_id == self._open.chunk_id

    def chunk_exists(self, chunk_id: int) -> bool:
        """True when ``chunk_id`` refers to persisted or in-memory data."""
        if chunk_id == self._open.chunk_id:
            return True
        if any(c.chunk_id == chunk_id for c in self._transitions):
            return True
        return self.index.position_of_chunk(chunk_id) is not None

    def chunk_events_for_iterator(self, chunk_id: int) -> list[Event] | None:
        """Resolve chunk events for a cursor, paging + prefetching.

        In-memory chunks are returned directly; persisted chunks go
        through the cache (a miss is a demand load) and entering a
        persisted chunk prefetches the next one.
        """
        if chunk_id == self._open.chunk_id:
            return self._open.events
        for chunk in self._transitions:
            if chunk.chunk_id == chunk_id:
                return chunk.events
        position = self.index.position_of_chunk(chunk_id)
        if position is None:
            return None
        events = self.cache.get(chunk_id)
        if events is None:
            events = self._load_chunk(position)
            self.cache.put_demand(chunk_id, events)
            self.stats.demand_chunk_loads += 1
        if self.config.prefetch:
            self._prefetch(position + 1)
        return events

    def _prefetch(self, position: int) -> None:
        if position >= len(self.index):
            return
        meta = self.index.get(position)
        if self.cache.peek(meta.chunk_id):
            return
        events = self._load_chunk(position)
        self.cache.put_prefetch(meta.chunk_id, events)
        self.stats.prefetch_chunk_loads += 1

    def _load_chunk(self, position: int) -> list[Event]:
        meta = self.index.get(position)
        record = self.storage.read(meta.file_name, meta.offset, meta.length)
        crc, offset = serde.read_u32(record, 0)
        payload, _ = serde.read_bytes(record, offset)
        if serde.crc32_of(payload) != crc:
            raise StorageError(
                f"corrupt chunk {meta.chunk_id} in {meta.file_name}@{meta.offset}"
            )
        chunk = Chunk.deserialize(payload, self.registry.get)
        return chunk.events

    # -- iterators ---------------------------------------------------------------

    def new_iterator(self, offset_ms: int = 0, name: str = "") -> ReservoirIterator:
        """Create a cursor at the current frontier (end of stream)."""
        iterator = ReservoirIterator(
            self,
            offset_ms,
            chunk_id=self._open.chunk_id,
            index=len(self._open.events),
            name=name,
        )
        self._iterators.append(iterator)
        return iterator

    def new_iterator_at(self, timestamp: int, offset_ms: int = 0, name: str = "") -> ReservoirIterator:
        """Create a cursor positioned at the first event with ts > ``timestamp``.

        Random positioning powers metric backfill (tail cursor placed in
        history) via the timestamp index.
        """
        chunk_id, index = self.position_after(timestamp)
        iterator = ReservoirIterator(self, offset_ms, chunk_id, index, name=name)
        self._iterators.append(iterator)
        return iterator

    def release_iterator(self, iterator: ReservoirIterator) -> None:
        """Unregister a cursor (stops missed-queue fixups for it)."""
        try:
            self._iterators.remove(iterator)
        except ValueError:
            pass

    @property
    def iterator_count(self) -> int:
        """Number of live cursors (Figure 9b's x-axis)."""
        return len(self._iterators)

    # -- random reads ---------------------------------------------------------------

    def position_after(self, timestamp: int) -> tuple[int, int]:
        """The ``(chunk_id, index)`` of the first event with ts > ``timestamp``."""
        position = self.index.first_position_covering(timestamp + 1)
        while position < len(self.index):
            meta = self.index.get(position)
            if meta.last_ts > timestamp:
                events = self.cache.get(meta.chunk_id)
                if events is None:
                    events = self._load_chunk(position)
                    self.cache.put_demand(meta.chunk_id, events)
                    self.stats.demand_chunk_loads += 1
                idx = bisect.bisect_right([e.timestamp for e in events], timestamp)
                if idx < len(events):
                    return (meta.chunk_id, idx)
            position += 1
        for chunk in self._transitions + [self._open]:
            if len(chunk) and chunk.last_ts > timestamp:
                idx = bisect.bisect_right(
                    [e.timestamp for e in chunk.events], timestamp
                )
                if idx < len(chunk.events):
                    return (chunk.chunk_id, idx)
        return (self._open.chunk_id, len(self._open.events))

    def read_range(self, start_exclusive: int, end_inclusive: int) -> list[Event]:
        """All stored events with ``start_exclusive < ts <= end_inclusive``.

        This is the backfill read path; it bypasses iterator state but
        shares the cache.
        """
        result: list[Event] = []
        chunk_id, index = self.position_after(start_exclusive)
        while True:
            events = self.chunk_events_for_iterator(chunk_id)
            if events is None:
                break
            while index < len(events):
                event = events[index]
                if event.timestamp > end_inclusive:
                    return result
                result.append(event)
                index += 1
            if self.chunk_can_grow(chunk_id) or not self.chunk_exists(chunk_id + 1):
                break
            chunk_id += 1
            index = 0
        return result

    # -- introspection -----------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Total stored events (persisted + in-memory)."""
        return (
            self.index.total_events()
            + sum(len(c) for c in self._transitions)
            + len(self._open)
        )

    @property
    def memory_chunk_count(self) -> int:
        """In-memory chunks (open + transitions), excluding cache."""
        return 1 + len(self._transitions)

    @property
    def max_seen_ts(self) -> int:
        """Largest event timestamp observed (event-time 'now')."""
        return self._max_seen_ts

    def file_names(self) -> list[str]:
        """All segment files backing this reservoir."""
        names = {meta.file_name for meta in self.index}
        return sorted(names)

    # -- checkpoint / restore ---------------------------------------------------------

    def checkpoint_metadata(self) -> bytes:
        """Small blob: index + in-memory chunks + counters + dedup ids.

        Together with the (immutable) segment files this reconstructs
        the reservoir exactly; the engine pairs it with a message offset
        so newer events replay from the messaging layer.
        """
        buf = bytearray()
        serde.write_bytes(buf, self.registry.to_bytes())
        serde.write_bytes(buf, self.index.to_bytes())
        serde.write_varint(buf, self._next_chunk_id)
        serde.write_varint(buf, self._file_seq)
        serde.write_varint(buf, self._chunks_in_file)
        serde.write_str(buf, self._current_file or "")
        serde.write_signed_varint(buf, self._max_seen_ts)
        in_memory = list(self._transitions) + ([self._open] if len(self._open) else [])
        serde.write_varint(buf, len(in_memory))
        for chunk in in_memory:
            schema = self.registry.get(chunk.schema_id)
            serde.write_varint(buf, chunk.chunk_id)
            serde.write_varint(buf, 1 if chunk.state is ChunkState.TRANSITION else 0)
            serde.write_signed_varint(buf, chunk.closed_at_ms if chunk.closed_at_ms is not None else -1)
            serde.write_bytes(buf, chunk.serialize(schema, self._codec))
        serde.write_varint(buf, self._open.chunk_id)
        return bytes(buf)

    @classmethod
    def restore(
        cls,
        metadata: bytes,
        storage: StorageBackend,
        config: ReservoirConfig | None = None,
    ) -> "EventReservoir":
        """Rebuild a reservoir from checkpoint metadata + segment files."""
        offset = 0
        registry_blob, offset = serde.read_bytes(metadata, offset)
        registry = SchemaRegistry.from_bytes(registry_blob)
        reservoir = cls(registry, storage=storage, config=config)
        index_blob, offset = serde.read_bytes(metadata, offset)
        reservoir.index = ReservoirIndex.from_bytes(index_blob)
        reservoir._next_chunk_id, offset = serde.read_varint(metadata, offset)
        reservoir._file_seq, offset = serde.read_varint(metadata, offset)
        reservoir._chunks_in_file, offset = serde.read_varint(metadata, offset)
        current_file, offset = serde.read_str(metadata, offset)
        reservoir._current_file = current_file or None
        reservoir._max_seen_ts, offset = serde.read_signed_varint(metadata, offset)
        chunk_count, offset = serde.read_varint(metadata, offset)
        in_memory: list[Chunk] = []
        for _ in range(chunk_count):
            _chunk_id, offset = serde.read_varint(metadata, offset)
            is_transition, offset = serde.read_varint(metadata, offset)
            closed_at, offset = serde.read_signed_varint(metadata, offset)
            payload, offset = serde.read_bytes(metadata, offset)
            chunk = Chunk.deserialize(payload, registry.get)
            chunk.state = (
                ChunkState.TRANSITION if is_transition else ChunkState.OPEN
            )
            chunk.closed_at_ms = closed_at if closed_at >= 0 else None
            in_memory.append(chunk)
        open_chunk_id, offset = serde.read_varint(metadata, offset)
        reservoir._transitions = [
            c for c in in_memory if c.state is ChunkState.TRANSITION
        ]
        open_candidates = [c for c in in_memory if c.state is ChunkState.OPEN]
        if open_candidates:
            reservoir._open = open_candidates[0]
        else:
            reservoir._open = Chunk(open_chunk_id, registry.current().schema_id)
            reservoir._next_chunk_id = max(reservoir._next_chunk_id, open_chunk_id + 1)
        for chunk in in_memory:
            for event in chunk.events:
                reservoir._dedup[event.event_id] = chunk.chunk_id
        return reservoir
