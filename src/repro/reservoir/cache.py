"""The reservoir chunk cache with eager prefetching.

"Iterators eagerly load adjacent chunks into cache when a new chunk is
loaded from disk, and starts to be iterated. Hence, when a window needs
events from the next chunk, the chunk is normally already available"
(§4.1.1). The cache distinguishes *demand* loads (latency-visible: the
iterator had to wait) from *prefetch* loads (asynchronous in the paper,
hidden from the critical path) — the distinction Figure 9b measures when
the iterator count approaches the cache capacity.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Counters consumed by tests and the latency cost model."""

    hits: int = 0
    demand_misses: int = 0
    prefetch_loads: int = 0
    prefetch_wasted: int = 0  # prefetched but evicted before first use
    evictions: int = 0

    @property
    def total_requests(self) -> int:
        return self.hits + self.demand_misses

    @property
    def miss_rate(self) -> float:
        total = self.total_requests
        return self.demand_misses / total if total else 0.0


class ChunkCache:
    """LRU cache of decoded chunk event lists, keyed by chunk id.

    Capacity is measured in chunks, mirroring the paper's experiment
    setup ("we used 220 chunk elements in Railgun's cache", §5.2.1).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, list] = OrderedDict()
        self._never_used: set[int] = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, chunk_id: int) -> bool:
        return chunk_id in self._entries

    def get(self, chunk_id: int) -> list | None:
        """Events for a cached chunk (refreshes recency) or None."""
        entry = self._entries.get(chunk_id)
        if entry is None:
            self.stats.demand_misses += 1
            return None
        self._entries.move_to_end(chunk_id)
        self._never_used.discard(chunk_id)
        self.stats.hits += 1
        return entry

    def peek(self, chunk_id: int) -> bool:
        """Presence check without touching stats or recency."""
        return chunk_id in self._entries

    def put_demand(self, chunk_id: int, events: list) -> None:
        """Insert a chunk loaded on the critical path."""
        self._insert(chunk_id, events, prefetched=False)

    def put_prefetch(self, chunk_id: int, events: list) -> None:
        """Insert a chunk loaded ahead of need (off the critical path)."""
        if chunk_id in self._entries:
            return
        self.stats.prefetch_loads += 1
        self._insert(chunk_id, events, prefetched=True)

    def _insert(self, chunk_id: int, events: list, prefetched: bool) -> None:
        if chunk_id in self._entries:
            self._entries.move_to_end(chunk_id)
            return
        while len(self._entries) >= self.capacity:
            evicted_id, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if evicted_id in self._never_used:
                self._never_used.discard(evicted_id)
                self.stats.prefetch_wasted += 1
        self._entries[chunk_id] = events
        if prefetched:
            self._never_used.add(chunk_id)

    def invalidate(self, chunk_id: int) -> None:
        """Drop one chunk (used when a transition chunk is re-persisted)."""
        self._entries.pop(chunk_id, None)
        self._never_used.discard(chunk_id)

    def clear(self) -> None:
        """Drop everything (stats are retained)."""
        self._entries.clear()
        self._never_used.clear()
