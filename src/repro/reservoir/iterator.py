"""Reservoir iterators — the window head/tail cursors of Figure 5.

An iterator is a cursor over the reservoir's global event order,
positioned at ``(chunk_id, index_within_chunk)``. Windows advance their
head iterator to pull *entering* events and their tail iterator to pull
*expiring* events; iterators transparently page closed chunks through
the cache and trigger the eager prefetch of the next chunk the moment
they enter a new one.

Out-of-order inserts behind a cursor are delivered through a *missed
queue*: the reservoir shifts the cursor and parks the late event so the
invariant "every stored event is emitted exactly once per iterator"
survives late data (see :meth:`EventReservoir._fixup_iterators`).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.events.event import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.reservoir.reservoir import EventReservoir


class ReservoirIterator:
    """A shared, forward-only cursor over reservoir events."""

    def __init__(
        self,
        reservoir: "EventReservoir",
        offset_ms: int,
        chunk_id: int,
        index: int,
        name: str = "",
    ) -> None:
        self._reservoir = reservoir
        self.offset_ms = offset_ms
        self.chunk_id = chunk_id
        self.index = index
        self.name = name or f"it@{offset_ms}"
        self.missed: deque[Event] = deque()
        self.refcount = 1
        self.events_emitted = 0
        self._current_events: list[Event] | None = None
        self._current_chunk_id = -1

    @property
    def position(self) -> tuple[int, int]:
        """Current ``(chunk_id, index)`` cursor."""
        return (self.chunk_id, self.index)

    def advance_upto(
        self, limit_ts: int, max_at_limit: int | None = None
    ) -> list[Event]:
        """Emit all unconsumed events with ``timestamp <= limit_ts``.

        Late events parked in the missed queue are emitted first (they
        are, by construction, already behind the cursor and therefore
        within any future limit).

        ``max_at_limit`` bounds how many scanned events with timestamp
        *exactly* ``limit_ts`` are emitted before the cursor stops (just
        past the last emitted one). The batched ingestion path uses this
        to process timestamp-tied runs one event at a time: a tie group
        is fully appended before the plan advances, so each advance must
        stop at its own event instead of consuming the whole group.
        Missed-queue events do not count against the bound.
        """
        batch: list[Event] = []
        while self.missed:
            batch.append(self.missed.popleft())
        reservoir = self._reservoir
        at_limit = 0
        capped = False
        while True:
            events = self._events_for(self.chunk_id)
            if events is None:
                break  # cursor is at the frontier (no such chunk yet)
            while self.index < len(events):
                event = events[self.index]
                if event.timestamp > limit_ts:
                    self.events_emitted += len(batch)
                    return batch
                batch.append(event)
                self.index += 1
                if event.timestamp == limit_ts and max_at_limit is not None:
                    at_limit += 1
                    if at_limit >= max_at_limit:
                        capped = True
                        break
            # Exhausted this chunk (or capped exactly at its tail). The
            # open chunk can still grow, so park there; otherwise move
            # to the next chunk if it exists — the capped exit performs
            # the same boundary walk so the cursor parks at the position
            # an uncapped advance over the same consumed events would
            # reach, but never emits (nor skips) anything past the cap.
            if capped and self.index < len(events):
                break
            if reservoir.chunk_can_grow(self.chunk_id):
                break
            if not reservoir.chunk_exists(self.chunk_id + 1):
                break
            self.chunk_id += 1
            self.index = 0
            self._current_events = None
            self._current_chunk_id = -1
            if capped:
                # Re-run the walk on the next chunk: an empty closed
                # chunk would roll again; a non-empty one parks at 0.
                events = self._events_for(self.chunk_id)
                if events is None or len(events) > 0:
                    break
        self.events_emitted += len(batch)
        return batch

    def _events_for(self, chunk_id: int) -> list[Event] | None:
        if self._current_chunk_id == chunk_id and self._current_events is not None:
            return self._current_events
        events = self._reservoir.chunk_events_for_iterator(chunk_id)
        if events is None:
            return None
        self._current_events = events
        self._current_chunk_id = chunk_id
        return events

    def invalidate_cached_chunk(self) -> None:
        """Drop the local chunk reference (called when its data moved)."""
        self._current_events = None
        self._current_chunk_id = -1

    def note_insert(self, chunk_id: int, position: int, event: Event) -> None:
        """React to a late insert at ``(chunk_id, position)``.

        If the cursor has already passed that slot, shift it so it still
        points at the same next event, and park the late event in the
        missed queue.
        """
        if chunk_id > self.chunk_id:
            return
        if chunk_id == self.chunk_id:
            if position >= self.index:
                return
            self.index += 1
        # Insert happened strictly behind the cursor.
        self.missed.append(event)
        if chunk_id == self._current_chunk_id:
            # list identity is stable (in-place insert), but be safe.
            self.invalidate_cached_chunk()

    def __repr__(self) -> str:
        return (
            f"ReservoirIterator({self.name}, offset={self.offset_ms}ms, "
            f"pos=({self.chunk_id},{self.index}), missed={len(self.missed)})"
        )
