"""The event reservoir (paper §4.1.1, Figure 5).

Stores every event of a task processor: a very small in-memory part (the
open chunk plus the chunks pinned by window head/tail iterators) and a
potentially large disk part (closed chunks serialized, compressed and
appended to immutable segment files). Windows read events through
*iterators* that transparently page chunks through an eagerly-prefetching
cache, so window size does not affect memory usage — the paper's central
claim ("windows of years are equivalent to windows of seconds").
"""

from repro.reservoir.cache import ChunkCache
from repro.reservoir.chunk import Chunk, ChunkState
from repro.reservoir.index import ChunkMeta, ReservoirIndex
from repro.reservoir.iterator import ReservoirIterator
from repro.reservoir.reservoir import (
    AppendResult,
    EventReservoir,
    OutOfOrderPolicy,
    ReservoirConfig,
)

__all__ = [
    "Chunk",
    "ChunkState",
    "ChunkMeta",
    "ReservoirIndex",
    "ChunkCache",
    "ReservoirIterator",
    "AppendResult",
    "EventReservoir",
    "OutOfOrderPolicy",
    "ReservoirConfig",
]
