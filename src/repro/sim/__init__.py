"""Latency simulation substrate (paper §5).

The paper's evaluation is a set of latency-distribution experiments on
AWS clusters — queueing phenomena that pure-Python wall-clock runs
cannot reproduce at rate. This package simulates the end-to-end pipeline
(injector -> Kafka -> processor unit -> Kafka -> injector) with
calibrated cost models per engine:

- per-event service time built from the *mechanisms* the real
  components expose (pane count for hopping windows, state-key accesses
  for Railgun plans, chunk-cache miss probability for Figure 9b);
- a JVM GC model driven by allocation rate and heap pressure (the §5.3
  bottleneck: "at 25 thousand ev/sec, we are creating objects at a rate
  of about 5GB/sec");
- a Kafka/network RTT model with heavy-tailed hiccups and a broker-load
  penalty that grows with the partition count (the §5.3 degradation).

Arrivals are open-loop, so latencies are free of coordinated omission by
construction (the paper corrects for it explicitly, §5).
"""

from repro.sim.distributions import Exponential, LogNormal
from repro.sim.gc import GcConfig, GcModel
from repro.sim.kafka_model import KafkaConfig, KafkaModel
from repro.sim.pipeline import PipelineConfig, PipelineResult, simulate_pipeline
from repro.sim.service import (
    HoppingServiceConfig,
    HoppingServiceModel,
    PerEventScanServiceModel,
    RailgunServiceConfig,
    RailgunServiceModel,
)

__all__ = [
    "LogNormal",
    "Exponential",
    "GcModel",
    "GcConfig",
    "KafkaModel",
    "KafkaConfig",
    "RailgunServiceModel",
    "RailgunServiceConfig",
    "HoppingServiceModel",
    "HoppingServiceConfig",
    "PerEventScanServiceModel",
    "PipelineConfig",
    "PipelineResult",
    "simulate_pipeline",
]
