"""Kafka/network round-trip model.

End-to-end latency in the paper "includes the network time, the
communication overhead using Kafka, and the processing time" (§5). The
model charges a lognormal RTT per leg with occasional heavy hiccups
(broker leadership churn, TCP retransmits — the paper attributes its
99.99%+ variation to "Kafka communication, rather than Railgun",
§5.2.1), plus a load penalty growing with partitions per broker (the
§5.3 scaling bottleneck: "we start to see a bottleneck in Kafka,
probably caused by the increased number of partitions").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.distributions import LogNormal


@dataclass
class KafkaConfig:
    """RTT shape and load-penalty knobs."""

    leg_median_ms: float = 0.6
    leg_sigma: float = 0.55
    hiccup_probability: float = 2e-5
    hiccup_median_ms: float = 90.0
    hiccup_sigma: float = 0.5
    # penalty per (partition / broker) beyond the comfortable ratio
    partitions_per_broker_comfort: float = 8.0
    load_penalty_per_ratio: float = 0.06  # ms of extra median per unit
    acks_all_extra_ms: float = 0.25  # replication wait on the ingest leg


class KafkaModel:
    """Per-leg delay sampler for one cluster configuration."""

    def __init__(
        self,
        config: KafkaConfig,
        rng: random.Random,
        total_partitions: int = 16,
        brokers: int = 1,
        acks_all: bool = False,
    ) -> None:
        self.config = config
        self._rng = rng
        ratio = total_partitions / max(brokers, 1)
        overload = max(0.0, ratio - config.partitions_per_broker_comfort)
        median = config.leg_median_ms + overload * config.load_penalty_per_ratio
        if acks_all:
            median += config.acks_all_extra_ms
        self._leg = LogNormal(median, config.leg_sigma, rng)
        self._hiccup = LogNormal(config.hiccup_median_ms, config.hiccup_sigma, rng)
        self.effective_median_ms = median

    def leg_delay(self) -> float:
        """One produce-to-consume leg (injector->processor or back)."""
        delay = self._leg.sample()
        if self._rng.random() < self.config.hiccup_probability:
            delay += self._hiccup.sample()
        return delay
