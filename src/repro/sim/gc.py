"""JVM garbage-collection pause model.

The paper identifies GC as Railgun's main single-node bottleneck (§5.3:
object creation at ~5 GB/s versus a 32 GB heap; §5.2.1: "we also start
to see Garbage Collection problems due to memory pressure" at 240
iterators). The model is allocation-driven:

- every processed event allocates ``alloc_per_event_bytes``;
- when cumulative allocation fills the young generation, a **minor**
  stop-the-world pause is charged (a few ms, lognormal);
- minor pauses promote a fraction of the young gen; when the live set
  approaches the heap, **major** pauses (hundreds of ms) kick in, with
  frequency scaling in heap pressure — the Figure 9b cliff.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.distributions import LogNormal


@dataclass
class GcConfig:
    """Heap geometry and pause shapes."""

    heap_bytes: float = 10e9  # the paper's 10 GB single-node heap
    young_gen_bytes: float = 1.5e9
    baseline_live_bytes: float = 2e9
    alloc_per_event_bytes: float = 200e3  # ~5 GB/s at 25k ev/s (§5.3)
    promotion_fraction: float = 0.02
    minor_pause_median_ms: float = 8.0
    minor_pause_sigma: float = 0.5
    major_pause_median_ms: float = 280.0
    major_pause_sigma: float = 0.35
    # live-set fraction of heap beyond which major collections begin
    major_threshold: float = 0.80


class GcModel:
    """Stateful pause generator; ask it after every simulated event."""

    def __init__(self, config: GcConfig, rng: random.Random, extra_live_bytes: float = 0.0) -> None:
        self.config = config
        self._rng = rng
        self._young_used = 0.0
        self._floor = config.baseline_live_bytes + extra_live_bytes
        self._live = self._floor
        self._minor = LogNormal(config.minor_pause_median_ms, config.minor_pause_sigma, rng)
        self._major = LogNormal(config.major_pause_median_ms, config.major_pause_sigma, rng)
        self.minor_pauses = 0
        self.major_pauses = 0

    @property
    def heap_pressure(self) -> float:
        """Live set as a fraction of the heap."""
        return self._live / self.config.heap_bytes

    def on_event(self) -> float:
        """Pause milliseconds charged to the current event (usually 0)."""
        self._young_used += self.config.alloc_per_event_bytes
        if self._young_used < self.config.young_gen_bytes:
            return 0.0
        # Minor collection: empty the young gen, promote survivors.
        self._young_used = 0.0
        self.minor_pauses += 1
        pause = self._minor.sample()
        promoted = self.config.young_gen_bytes * self.config.promotion_fraction
        self._live += promoted
        pressure = self.heap_pressure
        if pressure < self.config.major_threshold:
            # Concurrent (background) collection keeps up with promotion
            # while pressure is moderate — the live set stays at its
            # floor (pinned chunks + aggregation state).
            self._live = max(self._floor, self._live - promoted)
            return pause
        # Major collection probability rises steeply with pressure;
        # near pressure 1 every minor drags a major behind it (thrash).
        overshoot = (pressure - self.config.major_threshold) / max(
            1.0 - self.config.major_threshold, 1e-9
        )
        if self._rng.random() < min(1.0, overshoot):
            self.major_pauses += 1
            pause += self._major.sample()
            # Compaction reclaims promoted garbage, never pinned data.
            self._live = max(self._floor, self._live * 0.7)
        return pause
