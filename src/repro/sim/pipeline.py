"""The end-to-end pipeline simulation.

Models the paper's measurement loop (§5): an open-loop injector
publishes events to Kafka; a set of single-threaded processor units
(FIFO queues) consume, process (service model + GC pauses) and reply;
the injector timestamps the reply. Latency = reply time - send time,
including both Kafka legs — exactly what the paper's injectors measure.

Open-loop arrivals mean a slow server does **not** slow the injector
down, so the distribution is free of coordinated omission by
construction (the paper corrects for the same effect, §5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.common.percentiles import LatencyRecorder
from repro.sim.gc import GcConfig, GcModel
from repro.sim.kafka_model import KafkaModel


@dataclass
class PipelineConfig:
    """One simulated run."""

    rate_ev_s: float
    duration_s: float
    warmup_s: float = 10.0
    processors: int = 1
    seed: int = 1
    poisson_arrivals: bool = True
    key_space: int = 50_000
    #: hard cap so a divergent (overloaded) run still terminates
    max_latency_ms: float = 600_000.0


@dataclass
class PipelineResult:
    """Distribution + health counters."""

    recorder: LatencyRecorder
    offered_events: int
    measured_events: int
    utilization: float  # busiest processor's busy fraction
    max_backlog_ms: float  # worst queue delay seen
    gc_minor: int
    gc_major: int
    diverged: bool  # queueing grew without bound (overload)

    def percentile(self, pct: float) -> float:
        return self.recorder.percentile(pct)

    def summary(self) -> dict[str, float]:
        data = self.recorder.summary()
        data["utilization"] = self.utilization
        data["diverged"] = float(self.diverged)
        return data


def simulate_pipeline(
    config: PipelineConfig,
    service_factory: Callable[[random.Random], object],
    kafka: KafkaModel,
    gc_config: GcConfig | None = None,
    gc_extra_live_bytes: float = 0.0,
) -> PipelineResult:
    """Run one open-loop simulation.

    ``service_factory(rng)`` builds a fresh (stateful) service model per
    processor unit; each unit also gets its own GC state — pauses block
    that unit's queue, exactly like a stop-the-world pause blocks a
    single-threaded processor.
    """
    rng = random.Random(config.seed)
    arrival_rng = random.Random(config.seed + 1)
    route_rng = random.Random(config.seed + 2)

    units = []
    for index in range(config.processors):
        unit_rng = random.Random(config.seed + 100 + index)
        gc = (
            GcModel(gc_config, unit_rng, extra_live_bytes=gc_extra_live_bytes)
            if gc_config is not None
            else None
        )
        service = service_factory(unit_rng)
        units.append(
            {
                "service": service,
                # Per-batch vs per-event amortization: a service model
                # exposing poll_batch_events > 1 consumes queued events
                # in poll batches — the batch leader pays the dispatch
                # overhead, followers ride the same poll (§4.1 batched
                # ingest). Models without the attribute are untouched.
                "poll_batch": getattr(service, "poll_batch_events", 1),
                "batch_len": 0,
                "gc": gc,
                "busy_until": 0.0,
                "busy_ms": 0.0,
            }
        )

    recorder = LatencyRecorder(min_value_ms=0.01, relative_error=0.01)
    interarrival_ms = 1000.0 / config.rate_ev_s
    horizon_ms = config.duration_s * 1000.0
    warmup_ms = config.warmup_s * 1000.0

    now = 0.0
    offered = 0
    measured = 0
    max_backlog = 0.0
    diverged = False

    while now < horizon_ms:
        if config.poisson_arrivals:
            now += arrival_rng.expovariate(1.0 / interarrival_ms)
        else:
            now += interarrival_ms
        if now >= horizon_ms:
            break
        offered += 1
        key = route_rng.randrange(config.key_space)
        unit = units[key % config.processors]

        arrive = now + kafka.leg_delay()
        start = arrive if arrive > unit["busy_until"] else unit["busy_until"]
        backlog = start - arrive
        if backlog > max_backlog:
            max_backlog = backlog
        if unit["poll_batch"] > 1:
            # An event that finds the unit busy was already queued when
            # the current poll batch formed: it joins the batch until
            # the batch is full, then the next leader re-polls.
            in_batch = backlog > 0.0 and unit["batch_len"] < unit["poll_batch"]
            unit["batch_len"] = unit["batch_len"] + 1 if in_batch else 1
            service = unit["service"].service_ms(
                int(now), key, first_of_batch=not in_batch
            )
        else:
            service = unit["service"].service_ms(int(now), key)
        if unit["gc"] is not None:
            service += unit["gc"].on_event()
        done = start + service
        unit["busy_until"] = done
        unit["busy_ms"] += service
        latency = done + kafka.leg_delay() - now
        if latency > config.max_latency_ms:
            latency = config.max_latency_ms
            diverged = True
        if now >= warmup_ms:
            recorder.record(latency)
            measured += 1

    elapsed = max(now, 1.0)
    utilization = max(unit["busy_ms"] for unit in units) / elapsed
    # A run also counts as diverged when the backlog at the end keeps
    # growing relative to service capacity.
    if utilization > 0.995 and max_backlog > 10_000:
        diverged = True
    gc_minor = sum(u["gc"].minor_pauses for u in units if u["gc"] is not None)
    gc_major = sum(u["gc"].major_pauses for u in units if u["gc"] is not None)
    return PipelineResult(
        recorder=recorder,
        offered_events=offered,
        measured_events=measured,
        utilization=min(utilization, 1.0),
        max_backlog_ms=max_backlog,
        gc_minor=gc_minor,
        gc_major=gc_major,
        diverged=diverged,
    )
