"""Per-engine service-time models.

Each model turns the *mechanisms* of its engine into milliseconds of
single-threaded processor-unit work per event. The constants are
calibrated so a single node reproduces the paper's operating points
(§5.1: 500 ev/s comfortable for Railgun and for Flink at large hops;
§5.3: ~3.1k ev/s per processor unit at the 25k ev/s node sweet spot),
and the *shapes* — who degrades, where the cliffs sit — follow from the
mechanisms, not from fitted curves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sim.distributions import LogNormal


@dataclass
class RailgunServiceConfig:
    """Railgun per-event cost drivers (all microseconds unless noted)."""

    base_us: float = 120.0  # poll/dispatch/reply overhead
    #: share of ``base_us`` that is per-poll-dispatch bookkeeping rather
    #: than per-event compute; the batched ingest path pays it once per
    #: polled batch instead of once per event. Clamped to ``base_us``
    #: (a config tuned to a smaller base keeps its meaning: everything
    #: amortizable amortizes).
    dispatch_us: float = 70.0
    #: events consumed per poll batch. 1 models the per-event engine
    #: (every event pays the full dispatch); the batched engine polls
    #: up to ``poll_max_records`` at a time, amortizing ``dispatch_us``
    #: across every queued event that rides the same batch.
    poll_batch_events: int = 1
    per_state_key_us: float = 35.0  # one RocksDB get+put per DAG leaf
    state_keys: int = 2  # DAG leaves touched per event (Figure 6)
    per_tail_event_us: float = 12.0  # expiring-event processing per tail
    tails: int = 1  # distinct tail iterators advanced per event
    jitter_sigma: float = 0.35
    # reservoir paging
    chunk_events: int = 512
    iterators: int = 2
    cache_capacity: int = 220
    decompress_ms: float = 3.0  # OS page-cache hit: deserialization only
    full_io_ms: float = 14.0  # actual disk seek (rare)
    full_io_fraction: float = 0.12
    chunk_close_cpu_ms: float = 0.5  # serialize+compress, charged partially
    chunk_close_sync_fraction: float = 0.15  # I/O is async (§4.1.1)


class RailgunServiceModel:
    """Service time for one Railgun processor unit."""

    def __init__(self, config: RailgunServiceConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        if config.dispatch_us < 0.0:
            raise ValueError(f"negative dispatch_us: {config.dispatch_us}")
        self._dispatch_us = min(config.dispatch_us, config.base_us)
        base_ms = (
            config.base_us
            + config.per_state_key_us * config.state_keys
            + config.per_tail_event_us * config.tails
        ) / 1000.0
        self._base = LogNormal(base_ms, config.jitter_sigma, rng)
        # Follower events in a poll batch skip the per-dispatch share of
        # base_us — the paper's batched path pays poll/dispatch/reply
        # bookkeeping once per batch, not once per event.
        self._amortized = LogNormal(
            max(base_ms - self._dispatch_us / 1000.0, 1e-6),
            config.jitter_sigma,
            rng,
        )
        self._events = 0
        self._miss_probability = self._compute_miss_probability()

    @property
    def poll_batch_events(self) -> int:
        """Events per poll batch (the pipeline's batch-formation knob)."""
        return self.config.poll_batch_events

    def _compute_miss_probability(self) -> float:
        """Demand-miss probability per chunk advance.

        Prefetching hides loads while the cache can hold one in-flight
        chunk per iterator (§5.2.1); as the iterator count approaches
        the capacity, prefetched chunks get evicted before use.
        """
        iterators = self.config.iterators
        capacity = self.config.cache_capacity
        knee = 0.85 * capacity
        if iterators <= knee:
            return 0.0004
        overshoot = (iterators - knee) / max(capacity - knee, 1e-9)
        return min(1.0, 0.0004 + 0.5 * overshoot**2)

    @property
    def mean_service_ms(self) -> float:
        """Expected per-event service time at batch size 1 (worst case)."""
        return self._mean_service_ms(batch_events=1)

    @property
    def mean_service_ms_batched(self) -> float:
        """Expected per-event service time with full poll batches.

        The saturated-throughput bound for the batched engine: under
        load every poll drains ``poll_batch_events`` events and the
        dispatch overhead amortizes fully. Between this and
        :attr:`mean_service_ms` lies every partially-batched regime.
        """
        return self._mean_service_ms(batch_events=self.config.poll_batch_events)

    def _mean_service_ms(self, batch_events: int) -> float:
        advances_per_event = self.config.iterators / self.config.chunk_events
        miss_penalty = (
            self._miss_probability
            * (
                (1 - self.config.full_io_fraction) * self.config.decompress_ms
                + self.config.full_io_fraction * self.config.full_io_ms
            )
        )
        dispatch_us = self._dispatch_us
        amortized_base_us = (
            self.config.base_us
            - dispatch_us
            + dispatch_us / max(1, batch_events)
        )
        return (
            (amortized_base_us
             + self.config.per_state_key_us * self.config.state_keys
             + self.config.per_tail_event_us * self.config.tails) / 1000.0
            + advances_per_event * miss_penalty
            + (self.config.chunk_close_cpu_ms
               * self.config.chunk_close_sync_fraction) / self.config.chunk_events
        )

    def service_ms(
        self, event_time_ms: int, key: int, first_of_batch: bool = True
    ) -> float:
        """Sample one event's processing time.

        ``first_of_batch`` selects the per-batch vs per-event split:
        the first event of a poll batch pays the full dispatch overhead,
        followers sample the amortized base. With the default batch size
        of 1 every event is a batch leader and the model is bit-for-bit
        the pre-batching one (the amortized distribution never draws).
        """
        self._events += 1
        total = (self._base if first_of_batch else self._amortized).sample()
        # Chunk close: every chunk_events appends, serialize+compress;
        # writes are async so only a CPU fraction hits the critical path.
        if self._events % self.config.chunk_events == 0:
            total += (
                self.config.chunk_close_cpu_ms
                * self.config.chunk_close_sync_fraction
            )
        # Iterator chunk advances: each iterator crosses a chunk boundary
        # every chunk_events events; a miss pays deserialization (page
        # cache) or occasionally a real seek.
        advances = self.config.iterators / self.config.chunk_events
        while advances > 0:
            take = min(advances, 1.0)
            if self._rng.random() < take * self._miss_probability:
                if self._rng.random() < self.config.full_io_fraction:
                    total += self.config.full_io_ms * (0.7 + 0.6 * self._rng.random())
                else:
                    total += self.config.decompress_ms * (0.7 + 0.6 * self._rng.random())
            advances -= take
        return total


@dataclass
class HoppingServiceConfig:
    """Flink-style hopping-window cost drivers."""

    base_us: float = 150.0
    per_pane_update_us: float = 6.0  # one windowed-state update
    window_ms: int = 60 * 60 * 1000
    hop_ms: int = 5 * 60 * 1000
    per_key_rotation_us: float = 25.0  # pane create+fire+expire per key
    active_keys: int = 20_000  # distinct keys in one window span
    jitter_sigma: float = 0.4


class HoppingServiceModel:
    """Service time for a Flink-style worker on hopping windows.

    Two mechanisms dominate (§2.2): per-event pane updates
    (``windowSize/hopSize`` of them) and the per-hop rotation burst that
    touches every active key. Small hops inflate both — at 10 s hops and
    below the worker's capacity drops under the offered 500 ev/s and the
    queue (and thus latency) diverges, which is exactly Figure 8.
    """

    def __init__(self, config: HoppingServiceConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self.panes_per_event = -(-config.window_ms // config.hop_ms)
        per_event_ms = (
            config.base_us + config.per_pane_update_us * self.panes_per_event
        ) / 1000.0
        self._base = LogNormal(per_event_ms, config.jitter_sigma, rng)
        self._last_hop = -1

    @property
    def rotation_burst_ms(self) -> float:
        """Blocking work at each hop boundary."""
        return self.config.active_keys * self.config.per_key_rotation_us / 1000.0

    @property
    def mean_service_ms(self) -> float:
        """Expected per-event cost with the burst amortized in."""
        per_event = (
            self.config.base_us
            + self.config.per_pane_update_us * self.panes_per_event
        ) / 1000.0
        return per_event  # burst is charged separately per hop

    def service_ms(self, event_time_ms: int, key: int) -> float:
        """Sample one event's processing time (plus any due hop burst)."""
        total = self._base.sample()
        hop_index = event_time_ms // self.config.hop_ms
        if hop_index != self._last_hop:
            if self._last_hop >= 0:
                hops_crossed = min(hop_index - self._last_hop, 3)
                total += self.rotation_burst_ms * hops_crossed * (
                    0.8 + 0.4 * self._rng.random()
                )
            self._last_hop = hop_index
        return total


@dataclass
class PerEventScanConfig:
    """Flink custom fraud pattern [21]: full rescan per event."""

    base_us: float = 200.0
    per_scanned_event_us: float = 1.2  # RocksDB iteration + deserialize
    window_occupancy: float = 1800.0  # mean stored events per key window
    occupancy_sigma: float = 1.0  # Zipf keys: heavy-tailed occupancy
    jitter_sigma: float = 0.3


class PerEventScanServiceModel:
    """Service time for the per-event-rescan baseline (quadratic)."""

    def __init__(self, config: PerEventScanConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        self._occupancy = LogNormal(config.window_occupancy, config.occupancy_sigma, rng)
        self._jitter = LogNormal(1.0, config.jitter_sigma, rng)

    @property
    def mean_service_ms(self) -> float:
        import math

        mean_occupancy = self.config.window_occupancy * math.exp(
            self.config.occupancy_sigma**2 / 2
        )
        return (
            self.config.base_us
            + self.config.per_scanned_event_us * mean_occupancy
        ) / 1000.0

    def service_ms(self, event_time_ms: int, key: int) -> float:
        scanned = self._occupancy.sample()
        base = (
            self.config.base_us + self.config.per_scanned_event_us * scanned
        ) / 1000.0
        return base * self._jitter.sample()
