"""Seeded latency distributions used by the cost models."""

from __future__ import annotations

import math
import random


class LogNormal:
    """Lognormal sampler parameterized by median and tail spread.

    ``median`` is in the same unit as the samples (ms); ``sigma``
    controls the right tail (0.3 = tight, 1.5 = very heavy). Lognormal
    is the standard shape for service-time and network-RTT tails.
    """

    def __init__(self, median: float, sigma: float, rng: random.Random) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive: {median}")
        if sigma < 0:
            raise ValueError(f"sigma cannot be negative: {sigma}")
        self._mu = math.log(median)
        self._sigma = sigma
        self._rng = rng

    def sample(self) -> float:
        if self._sigma == 0:
            return math.exp(self._mu)
        return self._rng.lognormvariate(self._mu, self._sigma)


class Exponential:
    """Exponential sampler by mean (inter-arrival jitter, rare events)."""

    def __init__(self, mean: float, rng: random.Random) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        self._rate = 1.0 / mean
        self._rng = rng

    def sample(self) -> float:
        return self._rng.expovariate(self._rate)
