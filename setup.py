"""Setup shim.

The execution environment has setuptools but not ``wheel``, so the
PEP 660 editable-install path (which builds a wheel) fails. This shim
lets ``pip install -e . --no-build-isolation --no-use-pep517`` use the
legacy ``setup.py develop`` route instead. Configuration lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
