#!/usr/bin/env python3
"""Lint: the time plane is the only module allowed to read the clock.

Walks every module under ``src/repro`` except ``common/timesource.py``
and fails on raw uses of ``time.time`` / ``time.monotonic`` /
``time.monotonic_ns`` / ``time.sleep`` (alias-aware, plus the
``from time import ...`` forms). Those calls are exactly what made
fault suites sleep real seconds: any new deadline, heartbeat or backoff
must go through an injectable
:class:`~repro.common.timesource.TimeSource` so the chaos harness and
``$RAILGUN_TIME_SCALE`` keep working.

``time.perf_counter`` / ``perf_counter_ns`` stay allowed everywhere:
they measure how fast *real* hardware ran a benchmark, which is the one
thing that must never be virtualized.

Usage: ``python tools/check_time.py [root ...]`` (default ``src/repro``).
"""

from __future__ import annotations

import ast
import os
import sys

FORBIDDEN = {"time", "monotonic", "monotonic_ns", "sleep"}

#: module paths (relative to the scanned root) exempt from the lint —
#: the one place raw clock reads are the implementation, not a leak.
EXEMPT = {os.path.join("common", "timesource.py")}


def _violations(path: str, source: str) -> list[tuple[int, str]]:
    tree = ast.parse(source, filename=path)
    time_aliases: set[str] = set()
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in FORBIDDEN:
                        found.append(
                            (node.lineno, f"from time import {alias.name}")
                        )
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in time_aliases
            and node.attr in FORBIDDEN
        ):
            found.append((node.lineno, f"{node.value.id}.{node.attr}"))
    return sorted(found)


def check(roots: list[str]) -> int:
    bad = 0
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                if rel in EXEMPT:
                    continue
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                for lineno, what in _violations(path, source):
                    print(
                        f"{path}:{lineno}: raw {what} — inject a TimeSource "
                        "(repro.common.timesource) instead"
                    )
                    bad += 1
    if bad:
        print(f"check_time: {bad} raw time call site(s)", file=sys.stderr)
        return 1
    print("check_time: clean")
    return 0


if __name__ == "__main__":
    roots = sys.argv[1:] or [os.path.join("src", "repro")]
    sys.exit(check(roots))
