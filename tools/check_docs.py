"""Documentation gate: markdown link check + doctest on fenced snippets.

Two failure classes this catches before they rot:

- **Broken relative links** — every ``[text](target)`` in the given
  markdown files whose target is not an external URL or pure anchor
  must resolve to an existing file (anchors are stripped; targets are
  resolved against the markdown file's directory). External http(s)
  links are deliberately *not* fetched: CI must not flake on the
  network.
- **Stale code examples** — every fenced ```python block that contains
  doctest prompts (``>>>``) is executed with :mod:`doctest`. Quickstart
  snippets in README/docs are written doctest-style exactly so this
  gate can run them; an API change that breaks an example fails CI with
  the snippet's file and line.

Run from the repository root::

    python tools/check_docs.py README.md ROADMAP.md docs/*.md

Exit code 1 on any broken link or failing example; the offending
file/line is printed per finding.
"""

from __future__ import annotations

import argparse
import doctest
import re
import sys
from pathlib import Path

#: [text](target) — excluding images' leading "!" is unnecessary: image
#: targets must resolve too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE = re.compile(r"^```(\w*)\s*$")
_EXTERNAL = ("http://", "https://", "mailto:")


def check_links(path: Path) -> list[str]:
    """Relative-link failures in one markdown file."""
    failures: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for target in _LINK.findall(line):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path}:{lineno}: broken link -> {target}"
                )
    return failures


def python_fences(path: Path) -> list[tuple[int, str]]:
    """(start_line, source) of every fenced ```python block."""
    blocks: list[tuple[int, str]] = []
    language = None
    start = 0
    lines: list[str] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        fence = _FENCE.match(line)
        if fence is None:
            if language is not None:
                lines.append(line)
            continue
        if language is None:
            language = fence.group(1).lower()
            start = lineno + 1
            lines = []
        else:
            if language == "python":
                blocks.append((start, "\n".join(lines) + "\n"))
            language = None
    return blocks


def check_doctests(path: Path) -> list[str]:
    """Doctest failures in one markdown file's ```python fences.

    Blocks without ``>>>`` prompts are illustrative (they may reference
    undefined names like a prepared ``events`` list) and are skipped;
    blocks with prompts are executable documentation and must pass.
    """
    failures: list[str] = []
    runner = doctest.DocTestRunner(verbose=False)
    parser = doctest.DocTestParser()
    for start, source in python_fences(path):
        if ">>>" not in source:
            continue
        test = parser.get_doctest(
            source, {}, f"{path}:{start}", str(path), start
        )
        result = runner.run(test, clear_globs=True)
        if result.failed:
            failures.append(
                f"{path}:{start}: {result.failed} of {result.attempted} "
                f"doctest example(s) failed (run python tools/check_docs.py "
                f"for the diff above)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    arg_parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    arg_parser.add_argument("files", nargs="+", help="markdown files to check")
    arg_parser.add_argument(
        "--no-doctest", action="store_true",
        help="only check links (skip executing fenced snippets)",
    )
    args = arg_parser.parse_args(argv)
    failures: list[str] = []
    checked = 0
    for name in args.files:
        path = Path(name)
        if not path.exists():
            failures.append(f"{path}: file does not exist")
            continue
        checked += 1
        failures.extend(check_links(path))
        if not args.no_doctest:
            failures.extend(check_doctests(path))
    for failure in failures:
        print(f"DOCS: {failure}", file=sys.stderr)
    print(f"checked {checked} file(s): {len(failures)} problem(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
