#!/usr/bin/env python3
"""Lint: every metric name literal must come from the closed catalog.

Walks every module under ``src/repro`` and checks each string literal
passed as the metric-name argument to a :class:`MetricsRegistry` call
(``counter_add``, ``gauge_set``, ``observe_ms``, ``observe_since``,
``time_stage``, ``counter_value``, ``counter_sum``, ``counter_labels``)
against ``repro.telemetry.METRICS``. An unregistered literal is how
metric catalogs rot — a typo'd name records silently and dashboards
read zeros forever — so the catalog is enforced at lint time, the same
way ``check_time.py`` enforces the time plane.

Also refuses raw ``time.*`` clock reads inside ``src/repro/telemetry``
itself: the telemetry package's whole claim is that stamps flow through
the TimeSource plane (``check_time.py`` covers the rest of the tree;
this keeps the rule visible where it matters most).

Usage: ``python tools/check_telemetry.py [root ...]`` (default
``src/repro``).
"""

from __future__ import annotations

import ast
import os
import sys

#: MetricsRegistry methods whose first argument is a catalog name.
REGISTRY_METHODS = {
    "counter_add",
    "gauge_set",
    "observe_ms",
    "observe_since",
    "time_stage",
    "counter_value",
    "counter_sum",
    "counter_labels",
}

#: Receiver attribute names that hold a MetricsRegistry in this repo —
#: narrow on purpose so unrelated APIs sharing a method name (another
#: library's ``gauge_set``) never trip the lint.
REGISTRY_RECEIVERS = {"telemetry", "metrics"}

FORBIDDEN_TIME = {"time", "monotonic", "monotonic_ns", "sleep"}


def _load_catalog() -> set[str]:
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    try:
        from repro.telemetry import METRICS
    finally:
        sys.path.pop(0)
    return set(METRICS)


def _receiver_name(func: ast.Attribute) -> str | None:
    """``self.telemetry.observe_ms`` -> ``telemetry``; ``reg.counter_add``
    -> ``reg``; anything unrecognisable -> None."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return None


def _metric_violations(
    path: str, source: str, catalog: set[str]
) -> list[tuple[int, str]]:
    tree = ast.parse(source, filename=path)
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in REGISTRY_METHODS:
            continue
        receiver = _receiver_name(func)
        if receiver is None or not (
            receiver in REGISTRY_RECEIVERS
            or "telemetry" in receiver
            or "metrics" in receiver
            or "registry" in receiver
        ):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            if first.value not in catalog:
                found.append(
                    (node.lineno, f"{func.attr}({first.value!r})")
                )
    return sorted(found)


def _time_violations(path: str, source: str) -> list[tuple[int, str]]:
    tree = ast.parse(source, filename=path)
    aliases: set[str] = set()
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in FORBIDDEN_TIME:
                        found.append(
                            (node.lineno, f"from time import {alias.name}")
                        )
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in aliases
            and node.attr in FORBIDDEN_TIME
        ):
            found.append((node.lineno, f"{node.value.id}.{node.attr}"))
    return sorted(found)


def check(roots: list[str]) -> int:
    catalog = _load_catalog()
    bad = 0
    for root in roots:
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as handle:
                    source = handle.read()
                for lineno, what in _metric_violations(path, source, catalog):
                    print(
                        f"{path}:{lineno}: unregistered metric name in "
                        f"{what} — declare it in repro.telemetry.METRICS"
                    )
                    bad += 1
                if os.path.sep + "telemetry" + os.path.sep in path:
                    for lineno, what in _time_violations(path, source):
                        print(
                            f"{path}:{lineno}: raw {what} in the telemetry "
                            "package — stamps must go through TimeSource"
                        )
                        bad += 1
    if bad:
        print(f"check_telemetry: {bad} violation(s)", file=sys.stderr)
        return 1
    print("check_telemetry: clean")
    return 0


if __name__ == "__main__":
    roots = sys.argv[1:] or [os.path.join("src", "repro")]
    sys.exit(check(roots))
