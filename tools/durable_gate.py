"""CI gate: checkpoint-aware truncation keeps durable logs bounded.

Drives a durable ``create_cluster("process")`` through several ingest
rounds with a tight checkpoint cadence and tiny segments, then asserts
the truncation contract on the bytes actually left on disk:

1. **Deletion happened**: no completed segment survives wholly below
   the truncation horizon (whole segments under it must be removed).
2. **Nothing above the horizon was deleted**: the record *at* the
   horizon is still readable.
3. **Bounded footprint**: per partition, on-disk bytes are at most the
   bytes of the segments above the horizon — measured as
   ``ceil(retained_records / records_per_segment) + 1`` segments' worth
   (the "+1" is the open active segment).

The *horizon* is the stored checkpoint offset — **unless a replay
cursor pins retention**. A backfill materializing a late-defined metric
reads the log from behind the live writer; its unreplayed segments are
legitimately held below the minimum checkpoint until the cursor passes
them (``DurableLog.pin``), so the horizon is ``min(checkpoint,
pinned_floor)``. Phase two of the gate exercises exactly that: a
backfill is left mid-flight while a checkpoint truncates, the pinned
history must survive, and once the backfill completes the pins must be
gone and reclamation must catch back up.

Run from the repository root (CI's ``durable-bus`` job)::

    PYTHONPATH=src python tools/durable_gate.py

Exit code 1 on any violated bound, with the offending partition named.
"""

from __future__ import annotations

import shutil
import sys
import tempfile

from repro.engine.cluster import create_cluster
from repro.events.event import Event

SEGMENT_BYTES = 2048
ROUNDS = 4
EVENTS_PER_ROUND = 300
BACKFILL_QUERY = (
    "SELECT avg(amount) FROM tx GROUP BY cardId OVER sliding 500 minutes"
)


def check_bounds(cluster, tasks, offsets, failures, phase) -> None:
    """Assert the on-disk truncation contract for every event task."""
    spans_map = cluster.bus.segment_spans()
    for tp in tasks:
        checkpoint = offsets.get(tp, 0)
        if checkpoint <= 0:
            failures.append(f"{phase} {tp}: no checkpoint stored")
            continue
        floor = cluster.bus.log(tp).pinned_floor
        horizon = checkpoint if floor is None else min(checkpoint, floor)
        task_spans = spans_map[tp]
        end = cluster.bus.end_offset(tp)
        for base, seg_end in task_spans[:-1]:
            if seg_end <= horizon:
                failures.append(
                    f"{phase} {tp}: segment [{base},{seg_end}) survives "
                    f"wholly below horizon {horizon}"
                )
        if not cluster.bus.read(tp, horizon, 1) and horizon < end:
            failures.append(
                f"{phase} {tp}: record at horizon {horizon} is "
                f"unreadable after truncation"
            )
        # Bounded footprint: retained records fit the segments above
        # the horizon plus the active one.
        records_per_segment = max(
            seg_end - base for base, seg_end in task_spans
        )
        retained = end - horizon
        allowed_segments = (
            retained + records_per_segment - 1
        ) // records_per_segment + 1
        if len(task_spans) > allowed_segments:
            failures.append(
                f"{phase} {tp}: {len(task_spans)} segments on disk for "
                f"{retained} retained records above horizon {horizon} "
                f"(allowed {allowed_segments})"
            )
        print(
            f"{phase} {tp}: end={end} checkpoint={checkpoint} "
            f"pin={floor} segments={task_spans}"
        )


def run_gate() -> list[str]:
    failures: list[str] = []
    root = tempfile.mkdtemp(prefix="railgun-durable-gate-")
    try:
        with create_cluster(
            "process", workers=2, durable_dir=root, checkpoint_every=256
        ) as cluster:
            cluster.bus.config.segment_bytes = SEGMENT_BYTES
            cluster.create_stream(
                "tx", ["cardId"], partitions=2,
                schema={"cardId": "string", "amount": "float"},
            )
            cluster.create_metric(
                "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                "OVER sliding 500 minutes"
            )
            for round_index in range(ROUNDS):
                cluster.send_batch(
                    "tx",
                    [
                        Event(
                            f"r{round_index}-{i}",
                            round_index * EVENTS_PER_ROUND + i + 1,
                            {"cardId": f"c{i % 5}", "amount": float(i)},
                        )
                        for i in range(EVENTS_PER_ROUND)
                    ],
                )
            tasks = cluster.bus.topic_partitions("tx.cardId")

            # Phase 1: steady state, no readers behind — the horizon is
            # the checkpoint and deletion must reach it.
            offsets = cluster.checkpoint_now()
            for tp in tasks:
                if cluster.bus.log(tp).pinned_floor is not None:
                    failures.append(
                        f"steady {tp}: unexpected retention pin with no "
                        f"replay in flight"
                    )
                if cluster.bus.segment_spans()[tp][0][0] == 0:
                    failures.append(
                        f"steady {tp}: no segment deleted below "
                        f"checkpoint {offsets.get(tp, 0)}"
                    )
            check_bounds(cluster, tasks, offsets, failures, "steady")

            # Phase 2: pile on fresh history, then leave a backfill
            # mid-replay — its cursors must pin segments *below* the
            # next checkpoint until the replay passes them.
            for round_index in range(ROUNDS, ROUNDS + 2):
                cluster.send_batch(
                    "tx",
                    [
                        Event(
                            f"r{round_index}-{i}",
                            round_index * EVENTS_PER_ROUND + i + 1,
                            {"cardId": f"c{i % 5}", "amount": float(i)},
                        )
                        for i in range(EVENTS_PER_ROUND)
                    ],
                )
            backfill_id = cluster.backfill_metric(BACKFILL_QUERY)
            # Small replay steps so a single pump leaves the cursors
            # strictly behind the live frontier (same spirit as the
            # tiny segment_bytes override above).
            for job in cluster._backfills:
                job.batch = 64
            cluster.pump()  # opens the shadow cursors mid-replay
            pinned = {
                tp: cluster.bus.log(tp).pinned_floor for tp in tasks
            }
            offsets = cluster.checkpoint_now()
            for tp in tasks:
                floor = pinned[tp]
                if floor is None:
                    failures.append(
                        f"backfill {tp}: replay in flight but no "
                        f"retention pin open"
                    )
                    continue
                if floor >= offsets.get(tp, 0):
                    failures.append(
                        f"backfill {tp}: pin {floor} not below the "
                        f"checkpoint {offsets.get(tp, 0)} — the phase "
                        f"exercises nothing"
                    )
                first_base = cluster.bus.segment_spans()[tp][0][0]
                if first_base > floor:
                    failures.append(
                        f"backfill {tp}: truncation deleted pinned "
                        f"history (first base {first_base} > pin {floor})"
                    )
                if floor < cluster.bus.end_offset(tp) and not (
                    cluster.bus.read(tp, floor, 1)
                ):
                    failures.append(
                        f"backfill {tp}: pinned record {floor} unreadable"
                    )
            check_bounds(cluster, tasks, offsets, failures, "backfill")

            # Phase 3: the backfill completes, pins release, and the
            # next checkpoint reclaims everything it was holding.
            for _ in range(10_000):
                if cluster.backfill_status(backfill_id) != "running":
                    break
                cluster.pump()
            if cluster.backfill_status(backfill_id) != "complete":
                failures.append("backfill never completed")
            offsets = cluster.checkpoint_now()
            for tp in tasks:
                if cluster.bus.log(tp).pinned_floor is not None:
                    failures.append(
                        f"released {tp}: backfill complete but a "
                        f"retention pin leaked"
                    )
            check_bounds(cluster, tasks, offsets, failures, "released")
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return failures


def main() -> int:
    failures = run_gate()
    for failure in failures:
        print(f"TRUNCATION GATE: {failure}", file=sys.stderr)
    if not failures:
        print(
            "truncation gate: on-disk bytes bounded by segments above "
            "the horizon (checkpoint offsets, clamped to open replay "
            "pins); pins released on backfill completion"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
