"""CI gate: checkpoint-aware truncation keeps durable logs bounded.

Drives a durable ``create_cluster("process")`` through several ingest
rounds with a tight checkpoint cadence and tiny segments, then asserts
the truncation contract on the bytes actually left on disk:

1. **Deletion happened**: every event partition's first surviving
   segment starts above offset zero (whole segments below the stored
   checkpoint offsets were removed).
2. **Nothing above the checkpoint was deleted**: each surviving
   completed segment reaches past its task's stored offset, and the
   record *at* the offset is still readable.
3. **Bounded footprint**: per partition, on-disk bytes are at most the
   bytes of the segments above the minimum checkpoint offset — measured
   as ``ceil(retained_records / records_per_segment) + 1`` segments'
   worth (the "+1" is the open active segment).

Run from the repository root (CI's ``durable-bus`` job)::

    PYTHONPATH=src python tools/durable_gate.py

Exit code 1 on any violated bound, with the offending partition named.
"""

from __future__ import annotations

import shutil
import sys
import tempfile

from repro.engine.cluster import create_cluster
from repro.events.event import Event

SEGMENT_BYTES = 2048
ROUNDS = 4
EVENTS_PER_ROUND = 300


def run_gate() -> list[str]:
    failures: list[str] = []
    root = tempfile.mkdtemp(prefix="railgun-durable-gate-")
    try:
        with create_cluster(
            "process", workers=2, durable_dir=root, checkpoint_every=256
        ) as cluster:
            cluster.bus.config.segment_bytes = SEGMENT_BYTES
            cluster.create_stream(
                "tx", ["cardId"], partitions=2,
                schema={"cardId": "string", "amount": "float"},
            )
            cluster.create_metric(
                "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                "OVER sliding 500 minutes"
            )
            for round_index in range(ROUNDS):
                cluster.send_batch(
                    "tx",
                    [
                        Event(
                            f"r{round_index}-{i}",
                            round_index * EVENTS_PER_ROUND + i + 1,
                            {"cardId": f"c{i % 5}", "amount": float(i)},
                        )
                        for i in range(EVENTS_PER_ROUND)
                    ],
                )
            offsets = cluster.checkpoint_now()
            spans = cluster.bus.segment_spans()
            tasks = cluster.bus.topic_partitions("tx.cardId")
            for tp in tasks:
                checkpoint = offsets.get(tp, 0)
                task_spans = spans[tp]
                end = cluster.bus.end_offset(tp)
                first_base = task_spans[0][0]
                if checkpoint <= 0:
                    failures.append(f"{tp}: no checkpoint stored")
                    continue
                if first_base == 0:
                    failures.append(
                        f"{tp}: no segment deleted below checkpoint {checkpoint}"
                    )
                completed = task_spans[:-1]
                for base, seg_end in completed:
                    if seg_end <= checkpoint:
                        failures.append(
                            f"{tp}: segment [{base},{seg_end}) survives wholly "
                            f"below checkpoint {checkpoint}"
                        )
                if not cluster.bus.read(tp, checkpoint, 1) and checkpoint < end:
                    failures.append(
                        f"{tp}: record at checkpoint offset {checkpoint} "
                        f"is unreadable after truncation"
                    )
                # Bounded footprint: retained records fit the segments
                # above the checkpoint plus the active one.
                records_per_segment = max(
                    seg_end - base for base, seg_end in task_spans
                )
                retained = end - checkpoint
                allowed_segments = (
                    retained + records_per_segment - 1
                ) // records_per_segment + 1
                if len(task_spans) > allowed_segments:
                    failures.append(
                        f"{tp}: {len(task_spans)} segments on disk for "
                        f"{retained} retained records "
                        f"(allowed {allowed_segments})"
                    )
                print(
                    f"{tp}: end={end} checkpoint={checkpoint} "
                    f"segments={task_spans} disk_ok={not failures}"
                )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return failures


def main() -> int:
    failures = run_gate()
    for failure in failures:
        print(f"TRUNCATION GATE: {failure}", file=sys.stderr)
    if not failures:
        print("truncation gate: on-disk bytes bounded by segments above "
              "the checkpoint offsets")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
