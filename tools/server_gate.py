"""CI gate: the front door leaks no fds, sockets, threads or children.

A long-lived ingest server that sheds a few resources per
connection or per restart dies slowly in production and poisons every
test run that follows it in CI. This gate drives the server through
the two lifecycles where leaks hide and asserts the process ends each
one exactly as it started:

1. **Clean shutdown**: serve a single-process cluster, run DDL + a
   batch through a client, ``stop()`` — afterwards the process must
   hold no extra fds (sockets included), no extra threads, no
   multiprocessing children, and the port must refuse connections.
2. **SIGKILL mid-stream** (sharded backend): a child process serves a
   ``ClusterRouter`` over TCP and is SIGKILLed while a client has a
   batch in flight. The cluster's worker/frontend processes must
   notice the dead parent (control-pipe EOF) and exit on their own,
   and the port must go dead — no orphan process tree squatting on
   the address.

Run from the repository root (CI's ``front-door`` job)::

    PYTHONPATH=src python tools/server_gate.py

Exit code 1 on any leak, with the survivors named.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time

EVENTS = 100

_CHILD_SCRIPT = r"""
import os, sys
from repro.shard.router import ClusterRouter
from repro.server.server import serve_cluster

cluster = ClusterRouter(workers=2, frontends=2, checkpoint_every=None)
cluster.create_stream(
    "tx", ["cardId"], partitions=4,
    schema={"cardId": "string", "amount": "float"},
)
cluster.create_metric(
    "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
    "OVER sliding 5 minutes"
)
handle = serve_cluster(cluster)
host, port = handle.address
children = [p.pid for p in __import__("multiprocessing").active_children()]
print(f"PORT {port}")
print(f"PIDS {' '.join(map(str, children))}", flush=True)
sys.stdin.read()  # parked until SIGKILL
"""


def open_fds() -> set[str]:
    fds = set()
    for fd in os.listdir("/proc/self/fd"):
        try:
            fds.add(f"{fd}:{os.readlink(f'/proc/self/fd/{fd}')}")
        except OSError:
            continue  # the fd used to list the directory, races
    return fds


def port_refuses(host: str, port: int, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                pass
        except OSError:
            return True
        time.sleep(0.05)
    return False


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def scenario_clean_shutdown() -> list[str]:
    import multiprocessing

    from repro.engine.cluster import create_cluster
    from repro.server.client import RailgunClient

    fds_before = open_fds()
    threads_before = {t.name for t in threading.enumerate()}

    cluster = create_cluster("single", serve="tcp://127.0.0.1:0")
    host, port = cluster.server.address
    with RailgunClient(host, port) as client:
        client.create_stream(
            "tx", ["cardId"], partitions=4,
            schema={"cardId": "string", "amount": "float"},
        )
        client.create_metric(
            "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
            "OVER sliding 5 minutes"
        )
        replies = client.send_batch(
            "tx",
            [{"cardId": f"c{i % 5}", "amount": float(i)} for i in range(EVENTS)],
            timestamp=1_000,
        )
        assert len(replies) == EVENTS
    cluster.close()

    failures = []
    # Sockets close asynchronously with the loop; give the OS a beat.
    deadline = time.monotonic() + 5.0
    while open_fds() - fds_before and time.monotonic() < deadline:
        time.sleep(0.05)
    for leaked in sorted(open_fds() - fds_before):
        failures.append(f"leaked fd {leaked}")
    for name in sorted({t.name for t in threading.enumerate()} - threads_before):
        failures.append(f"leaked thread {name!r}")
    for child in multiprocessing.active_children():
        failures.append(f"leaked child process pid={child.pid}")
    if not port_refuses("127.0.0.1", port):
        failures.append(f"port {port} still accepting after close")
    return failures


def scenario_sigkill_mid_stream() -> list[str]:
    from repro.server.client import RailgunClient

    env = dict(os.environ, PYTHONPATH="src")
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD_SCRIPT],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        port_line = child.stdout.readline().split()
        pids_line = child.stdout.readline().split()
        assert port_line[0] == "PORT" and pids_line[0] == "PIDS"
        port = int(port_line[1])
        cluster_pids = [int(pid) for pid in pids_line[1:]]
        assert cluster_pids, "server child reported no cluster processes"

        client = RailgunClient("127.0.0.1", port)
        client.send_batch(
            "tx",
            [{"cardId": f"c{i % 5}", "amount": float(i)} for i in range(EVENTS)],
            timestamp=1_000,
        )
        # Leave a batch in flight and yank the server out from under it.
        fire_and_forget = threading.Thread(
            target=lambda: _swallow(
                client.send_batch,
                "tx",
                [{"cardId": "c0", "amount": 1.0} for _ in range(EVENTS)],
                timestamp=2_000,
            ),
            daemon=True,
        )
        fire_and_forget.start()
        time.sleep(0.05)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=10.0)
        _swallow(client.close)

        failures = []
        deadline = time.monotonic() + 15.0
        while (
            any(pid_alive(pid) for pid in cluster_pids)
            and time.monotonic() < deadline
        ):
            time.sleep(0.1)
        for pid in cluster_pids:
            if pid_alive(pid):
                failures.append(
                    f"cluster process {pid} orphaned after server SIGKILL"
                )
        if not port_refuses("127.0.0.1", port):
            failures.append(f"port {port} still accepting after SIGKILL")
        return failures
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=10.0)


def _swallow(fn, *args, **kwargs):
    try:
        fn(*args, **kwargs)
    except Exception:
        pass


def run_gate() -> list[str]:
    failures: list[str] = []
    for scenario in (scenario_clean_shutdown, scenario_sigkill_mid_stream):
        leaked = scenario()
        failures.extend(leaked)
        print(f"{scenario.__name__}: {'LEAK' if leaked else 'clean'}")
    return failures


def main() -> int:
    failures = run_gate()
    for failure in failures:
        print(f"SERVER GATE: {failure}", file=sys.stderr)
    if not failures:
        print(
            "server gate: no fds, sockets, threads or processes survive "
            "clean shutdown or SIGKILL"
        )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
