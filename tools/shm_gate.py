"""CI gate: the shm data plane leaks no shared-memory segments.

Every ring the cluster creates lives in ``/dev/shm`` until someone
unlinks it, so a missed unlink survives the process tree and eats the
host's tmpfs one test run at a time.  This gate drives the shm
transport through the lifecycles where an unlink is easiest to lose
and asserts ``/dev/shm`` ends each scenario empty of ``rgshm-*``
segments:

1. **Clean shutdown** (supervisor topology): ``create_cluster("process",
   transport="shm")`` ingests a batch, closes; supervisor-owned rings
   must be unlinked.
2. **Worker crash + restart** (supervisor topology): SIGKILL a worker
   mid-stream — the old incarnation's rings are replaced by fresh ones
   on respawn and both generations must be gone after close.
3. **Sharded frontends + worker crash** (router topology): frontends own
   their per-link rings; a killed worker quarantines the link, the
   replacement link allocates new rings, and ``close()`` sweeps the
   prefix.

The check is global, not prefix-scoped: *any* surviving ``rgshm-*``
segment fails, including strays from earlier scenarios in this run.

Run from the repository root (CI's ``shm-data-plane`` job)::

    PYTHONPATH=src python tools/shm_gate.py

Exit code 1 if any segment survives, with the orphans named.
"""

from __future__ import annotations

import sys
import time

from repro.engine.cluster import create_cluster
from repro.events.event import Event
from repro.shard import shm

EVENTS = 200


def _events(prefix: str) -> list[Event]:
    return [
        Event(
            f"{prefix}-{i}", i + 1,
            {"cardId": f"c{i % 5}", "amount": float(i)},
        )
        for i in range(EVENTS)
    ]


def _setup(cluster) -> None:
    cluster.create_stream(
        "tx", ["cardId"], partitions=4,
        schema={"cardId": "string", "amount": "float"},
    )
    cluster.create_metric(
        "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
        "OVER sliding 500 minutes"
    )


def _orphan_failures(scenario: str) -> list[str]:
    orphans = shm.orphans("rgshm-")
    return [f"{scenario}: leaked segment {name}" for name in orphans]


def scenario_clean_shutdown() -> list[str]:
    with create_cluster("process", workers=2, transport="shm") as cluster:
        _setup(cluster)
        replies = cluster.send_batch("tx", _events("clean"))
        assert len(replies) == EVENTS
    return _orphan_failures("clean shutdown")


def scenario_worker_crash() -> list[str]:
    with create_cluster("process", workers=2, transport="shm") as cluster:
        _setup(cluster)
        correlations = cluster.frontend.send_batch("tx", _events("crash"))
        while len(cluster.frontend.completed) < EVENTS // 4:
            cluster.pump()
        cluster.kill_worker(cluster.worker_ids()[0])
        deadline = time.monotonic() + 30.0
        while (
            len(cluster.frontend.completed) < len(correlations)
            and time.monotonic() < deadline
        ):
            cluster.pump()
        assert cluster.supervisor.restarts == 1
    return _orphan_failures("worker crash")


def scenario_router_worker_crash() -> list[str]:
    with create_cluster(
        "process", workers=2, frontends=2, transport="shm"
    ) as cluster:
        _setup(cluster)
        correlations = cluster._route_and_ship("tx", _events("router"))
        while len(cluster.completed) < EVENTS // 4:
            cluster.pump()
        cluster.kill_worker(cluster.worker_ids()[0])
        deadline = time.monotonic() + 30.0
        while (
            len(cluster.completed) < len(correlations)
            and time.monotonic() < deadline
        ):
            cluster.pump()
        assert cluster.supervisor.restarts == 1
    return _orphan_failures("router worker crash")


def run_gate() -> list[str]:
    failures: list[str] = []
    for scenario in (
        scenario_clean_shutdown,
        scenario_worker_crash,
        scenario_router_worker_crash,
    ):
        leaked = scenario()
        failures.extend(leaked)
        print(f"{scenario.__name__}: {'LEAK' if leaked else 'clean'}")
        # A leak in one scenario must not cascade into the next report.
        shm.sweep("rgshm-")
    return failures


def main() -> int:
    failures = run_gate()
    for failure in failures:
        print(f"SHM GATE: {failure}", file=sys.stderr)
    if not failures:
        print("shm gate: no shared-memory segments survive cluster "
              "shutdown or worker crashes")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
