"""Quickstart: one stream, two metrics, accurate per-event replies.

Run with::

    python examples/quickstart.py
"""

from repro.engine import RailgunCluster


def main() -> None:
    # A single-node "cluster" with two processor units — the smallest
    # Railgun deployment. All communication still flows through the
    # messaging layer, exactly like the multi-node setups.
    cluster = RailgunCluster(nodes=1, processor_units=2)

    # Streams declare a schema and their top-level partitioners (the
    # fields metrics will group by).
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=4,
        schema=[("cardId", "string"), ("amount", "float"), ("channel", "string")],
    )

    # Metrics are Figure 4 statements. This one is Q1 from the paper:
    # per-card spend over a true 5-minute sliding window.
    q1 = cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments "
        "GROUP BY cardId OVER sliding 5 minutes"
    )
    # Filters use the JEXL-like expression language.
    q2 = cluster.create_metric(
        "SELECT avg(amount) FROM payments WHERE channel == 'ecom' "
        "GROUP BY cardId OVER sliding 5 minutes"
    )

    minute = 60_000
    events = [
        (1 * minute, {"cardId": "card-1", "amount": 10.0, "channel": "ecom"}),
        (2 * minute, {"cardId": "card-1", "amount": 20.0, "channel": "pos"}),
        (3 * minute, {"cardId": "card-2", "amount": 5.0, "channel": "ecom"}),
        (4 * minute, {"cardId": "card-1", "amount": 30.0, "channel": "ecom"}),
        # 10 minutes later: card-1's earlier events have expired.
        (14 * minute, {"cardId": "card-1", "amount": 1.0, "channel": "ecom"}),
    ]

    print("event -> per-event aggregations (always accurate):")
    for timestamp, fields in events:
        reply = cluster.send("payments", fields, timestamp=timestamp)
        print(
            f"  t={timestamp // minute:>2}min {fields['cardId']} amount={fields['amount']:>5}: "
            f"sum={reply.value(q1, 'sum(amount)'):>5}  "
            f"count={reply.value(q1, 'count(*)')}  "
            f"ecom_avg={reply.value(q2, 'avg(amount)')}"
        )

    print("\nreply latency includes both Kafka legs (virtual ms):",
          reply.latency_ms)


if __name__ == "__main__":
    main()
