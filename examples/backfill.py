"""Metric backfill: add a metric later, filled from the reservoir (§6).

The paper lists "efficiently support metrics backfill, i.e., the ability
to add a new metric and fill it from old event data" as future work —
the reservoir's timestamp index makes it a random-read (§4.1.1). This
example streams events, then registers a new metric with
``backfill=True`` and shows it is immediately as accurate as a metric
that existed from the start.

Run with::

    python examples/backfill.py
"""

from repro.engine import RailgunCluster


def main() -> None:
    cluster = RailgunCluster(nodes=1, processor_units=1)
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=2,
        schema=[("cardId", "string"), ("amount", "float")],
    )
    # The metric that exists from the start (ground truth).
    original = cluster.create_metric(
        "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 minutes"
    )

    second = 1000
    print("streaming 50 events for card-A/card-B...")
    for index in range(50):
        card = "card-A" if index % 2 == 0 else "card-B"
        cluster.send(
            "payments", {"cardId": card, "amount": float(index)}, timestamp=index * second
        )

    print("\nregistering the same metric again, WITH backfill:")
    backfilled = cluster.create_metric(
        "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 minutes",
        backfill=True,
    )
    print("registering it once more, WITHOUT backfill (starts empty):")
    cold = cluster.create_metric(
        "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 minutes",
        backfill=False,
    )

    reply = cluster.send(
        "payments", {"cardId": "card-A", "amount": 1.0}, timestamp=51 * second
    )
    print("\nnext card-A event sees:")
    print(f"  original metric:   sum = {reply.value(original, 'sum(amount)'):>7.1f}")
    print(f"  backfilled metric: sum = {reply.value(backfilled, 'sum(amount)'):>7.1f}  (== original)")
    print(f"  cold metric:       sum = {reply.value(cold, 'sum(amount)'):>7.1f}  (only the new event)")

    assert reply.value(backfilled, "sum(amount)") == reply.value(original, "sum(amount)")
    assert reply.value(cold, "sum(amount)") == 1.0
    print("\nbackfill = reservoir random reads over the timestamp index; the")
    print("tail iterator is positioned in history so future expiry stays exact.")


if __name__ == "__main__":
    main()
