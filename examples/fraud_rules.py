"""The Figure 1 fraud rule: why hopping windows are not enough.

Business rule (§2.1): "if the number of transactions of a card in the
last 5 minutes is higher than 4, then block the transaction". A
fraudster spreads 5 transactions across almost 5 minutes, phased to
straddle hop boundaries. Railgun's real-time sliding window fires on the
5th event; a hopping window (any hop) has no pane containing all five.

Run with::

    python examples/fraud_rules.py
"""

from repro.baselines.hopping import HoppingWindowEngine
from repro.common.clock import MINUTES, SECONDS
from repro.engine import RailgunCluster

WINDOW = 5 * MINUTES


def main() -> None:
    cluster = RailgunCluster(nodes=1, processor_units=1)
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=2,
        schema=[("cardId", "string"), ("amount", "float")],
    )
    rule_metric = cluster.create_metric(
        "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes"
    )

    hopping = HoppingWindowEngine(WINDOW, 1 * MINUTES)

    # The Figure 1 timeline: e1..e5 inside one 5-minute span, crossing
    # hop boundaries (timestamps in seconds 30, 90, 150, 210, 329).
    attack = [30, 90, 150, 210, 329]
    base = 10 * MINUTES  # start mid-stream, away from t=0 alignment

    print("the attack: 5 card-X transactions within 299 seconds\n")
    blocked_by_railgun = False
    blocked_by_hopping = False
    for index, offset_s in enumerate(attack, start=1):
        timestamp = base + offset_s * SECONDS
        reply = cluster.send(
            "payments", {"cardId": "card-X", "amount": 99.0}, timestamp=timestamp
        )
        sliding_count = reply.value(rule_metric, "count(*)")
        hopping.on_event("card-X", timestamp, 99.0)
        hopping_count = hopping.max_live_count("card-X")
        sliding_fires = sliding_count > 4
        hopping_fires = hopping_count > 4
        blocked_by_railgun |= sliding_fires
        blocked_by_hopping |= hopping_fires
        print(
            f"  e{index} at t={offset_s:>3}s: sliding count={sliding_count} "
            f"{'BLOCK' if sliding_fires else 'allow'} | "
            f"hopping best pane={hopping_count} "
            f"{'BLOCK' if hopping_fires else 'allow'}"
        )

    print()
    print(f"railgun (real-time sliding window) blocked the attack: {blocked_by_railgun}")
    print(f"hopping window (1-min hop) blocked the attack:        {blocked_by_hopping}")
    print(
        "\nno single hopping pane ever contains all 5 events — the window"
        "\nboundaries are quantized to the hop grid (Figure 1's h1..h6)."
    )


if __name__ == "__main__":
    main()
