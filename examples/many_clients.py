"""The front door under load: 200 async clients, quotas, latency budgets.

One served cluster, many tenants. Three things are visible when it
runs:

1. **Multiplexing** — hundreds of concurrent TCP connections funnel
   into a single cluster through the asyncio ingest server, every
   batch answered.
2. **Admission control** — the ``greedy`` tenant's quota is a fraction
   of the ``steady`` tenants' and its overflow is answered with
   explicit ``ServerBusy`` frames (counted, retried, never silently
   dropped); the steady tenants' traffic is untouched.
3. **Latency budgets** — the server tracks observed p50/p99 per tenant
   against each tenant's declared budget and reports both.

Run with::

    PYTHONPATH=src python examples/many_clients.py
    PYTHONPATH=src python examples/many_clients.py --clients 64 --events 20

The flags keep CI soaks (64 connections) and local demos (200) on the
same script.
"""

from __future__ import annotations

import argparse
import asyncio

from repro.engine.cluster import create_cluster
from repro.server.admission import (
    AdmissionController,
    LatencyBudget,
    TenantQuota,
)
from repro.server.client import AsyncRailgunClient, ServerBusyError


async def steady_client(host, port, tenant, events, results):
    """A well-behaved tenant: batches within quota, retries on busy."""
    async with AsyncRailgunClient(host, port, tenant=tenant) as client:
        replies = await client.send_batch(
            "payments",
            [
                {"cardId": f"{tenant}-card-{i % 3}", "amount": float(i)}
                for i in range(events)
            ],
            timestamp=1_000,
            busy_retries=50,
        )
        results[tenant] = results.get(tenant, 0) + len(replies)


async def greedy_client(host, port, events, results):
    """A tenant that ignores its quota and eats ServerBusy for it."""
    async with AsyncRailgunClient(host, port, tenant="greedy") as client:
        accepted = shed = 0
        for start in range(0, events, 10):
            batch = [
                {"cardId": "greedy-card", "amount": 1.0}
                for _ in range(min(10, events - start))
            ]
            try:
                replies = await client.send_batch(
                    "payments", batch, timestamp=1_000
                )
                accepted += len(replies)
            except ServerBusyError as busy:
                shed += len(busy.correlations)
        results["greedy-accepted"] = results.get("greedy-accepted", 0) + accepted
        results["greedy-shed"] = results.get("greedy-shed", 0) + shed


async def drive(host, port, clients, events):
    results: dict[str, int] = {}
    tasks = []
    for n in range(clients):
        if n % 10 == 0:  # every tenth connection belongs to the greedy tenant
            tasks.append(greedy_client(host, port, events, results))
        else:
            tasks.append(
                steady_client(host, port, f"steady-{n % 8}", events, results)
            )
    await asyncio.gather(*tasks)
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--events", type=int, default=40,
                        help="events per client")
    args = parser.parse_args()

    admission = AdmissionController(
        quotas={
            # Enough burst for every steady client of the tenant at once.
            "greedy": TenantQuota(
                events_per_sec=200.0,
                burst=30,
                budget=LatencyBudget(p50_ms=100.0, p99_ms=1_000.0),
            ),
        },
        default_quota=TenantQuota(
            events_per_sec=500_000.0,
            burst=65_536,
            max_in_flight=65_536,
            budget=LatencyBudget(p50_ms=100.0, p99_ms=1_000.0),
        ),
        max_connections=2_048,
        max_in_flight=1 << 20,
        max_queue_depth=1 << 20,
    )
    cluster = create_cluster("single", processor_units=2)
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=4,
        schema=[("cardId", "string"), ("amount", "float")],
    )
    cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments GROUP BY cardId "
        "OVER sliding 5 minutes"
    )
    from repro.server.server import serve_cluster

    handle = serve_cluster(cluster, admission=admission)
    host, port = handle.address
    print(f"serving on tcp://{host}:{port} — "
          f"{args.clients} clients x {args.events} events\n")
    try:
        results = asyncio.run(drive(host, port, args.clients, args.events))
    finally:
        stats = handle.stats()
        handle.stop()
        cluster.close()

    steady_total = sum(
        count for tenant, count in results.items() if tenant.startswith("steady")
    )
    print(f"steady tenants: {steady_total} events accepted "
          f"(every batch answered)")
    print(f"greedy tenant:  {results.get('greedy-accepted', 0)} accepted, "
          f"{results.get('greedy-shed', 0)} shed with explicit ServerBusy")
    print(f"server counters: {stats['server']['busy_frames']} busy frames, "
          f"{stats['admission']['shed_batches']} shed batches\n")

    print(f"{'tenant':>12} {'p50 obs':>9} {'p50 budget':>11} "
          f"{'p99 obs':>9} {'p99 budget':>11}  within")
    for tenant, t in sorted(stats["admission"]["tenants"].items()):
        ok = "yes" if (t["within_p50_budget"] and t["within_p99_budget"]) else "NO"
        print(
            f"{tenant:>12} {t['observed_p50_ms']:>8.1f}m {t['budget_p50_ms']:>10.0f}m "
            f"{t['observed_p99_ms']:>8.1f}m {t['budget_p99_ms']:>10.0f}m  {ok}"
        )

    expected_steady = (args.clients - (args.clients + 9) // 10) * args.events
    assert steady_total == expected_steady, "a steady batch went unanswered"
    greedy_seen = results.get("greedy-accepted", 0) + results.get("greedy-shed", 0)
    assert greedy_seen == ((args.clients + 9) // 10) * args.events, (
        "greedy events must all be accounted for: accepted or shed, no drops"
    )
    print("\nevery event accounted for: accepted or explicitly shed")


if __name__ == "__main__":
    main()
