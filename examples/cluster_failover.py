"""Fault tolerance: replica promotion and sticky recovery (§4.2).

A 3-node cluster with replication factor 1 loses a node mid-stream.
Kafka-style heartbeat expiry detects the failure; the Figure 7 strategy
promotes replicas (zero-copy recovery) and re-replicates; window state
survives — the per-card counters keep their pre-failure contents. When
the node comes back, its stale on-disk data makes re-assignment cheap
(delta recovery).

Run with::

    python examples/cluster_failover.py
"""

from repro.engine import RailgunCluster
from repro.engine.processor import UnitConfig


def main() -> None:
    cluster = RailgunCluster(
        nodes=3,
        processor_units=2,
        replication_factor=1,
        brokers=3,
        unit_config=UnitConfig(checkpoint_interval=20),
    )
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=6,
        schema=[("cardId", "string"), ("amount", "float")],
    )
    metric = cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments "
        "GROUP BY cardId OVER sliding 10 minutes"
    )

    second = 1000
    print("phase 1: baseline traffic over 3 nodes")
    for index in range(60):
        reply = cluster.send(
            "payments",
            {"cardId": f"card-{index % 5}", "amount": 10.0},
            timestamp=index * second,
        )
    print(f"  card-0 sum before failure: {reply.value(metric, 'sum(amount)')}")

    victim = cluster.assignment_snapshot()["payments.cardId-0"]["active"][0]
    victim_node = victim.split("/")[0]
    print(f"\nphase 2: killing {victim_node} (owns payments.cardId-0)")
    cluster.fail_node(victim_node)
    cluster.run_until_quiet()

    print("phase 3: traffic continues — state survived the failure")
    for index in range(60, 80):
        reply = cluster.send(
            "payments",
            {"cardId": f"card-{index % 5}", "amount": 10.0},
            timestamp=index * second,
        )
    print(f"  card-0 sum after failover: {reply.value(metric, 'sum(amount)')}")

    stats = cluster.recovery_stats()
    print("\nrecovery bill:")
    print(f"  replica promotions (zero copy): {stats['promotions']}")
    print(f"  data recoveries:                {stats['recoveries']}")
    print(f"  bytes transferred:              {stats['bytes_transferred']}")

    print(f"\nphase 4: reviving {victim_node} — stale data makes rejoin cheap")
    cluster.revive_node(victim_node)
    cluster.run_until_quiet()
    stats = cluster.recovery_stats()
    print(f"  delta recoveries after revival: {stats['delta_recoveries']}")
    for task, owners in sorted(cluster.assignment_snapshot().items()):
        print(f"  {task:24s} active={owners['active'][0]} replicas={owners['replicas']}")


if __name__ == "__main__":
    main()
