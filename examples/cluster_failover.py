"""Fault tolerance: replica promotion, sticky recovery, sharded frontends.

Part 1 — the cooperative cluster (§4.2): a 3-node cluster with
replication factor 1 loses a node mid-stream. Kafka-style heartbeat
expiry detects the failure; the Figure 7 strategy promotes replicas
(zero-copy recovery) and re-replicates; window state survives — the
per-card counters keep their pre-failure contents. When the node comes
back, its stale on-disk data makes re-assignment cheap (delta recovery).

Part 2 — the multi-frontend process topology
(``create_cluster("process", workers=2, frontends=2)``): traffic flows
through two frontend processes; we SIGKILL one frontend *and* one shard
worker mid-stream and keep sending. The router respawns the frontend
from its journal, the supervisor restarts the worker from its
checkpoints, and the example asserts the recovered reply counts: every
event answered exactly once, per-key counters unbroken across both
crashes (see docs/ARCHITECTURE.md for the recovery state machines).

Run with::

    python examples/cluster_failover.py
"""

from repro.engine import RailgunCluster, create_cluster
from repro.engine.processor import UnitConfig


def main() -> None:
    cluster = RailgunCluster(
        nodes=3,
        processor_units=2,
        replication_factor=1,
        brokers=3,
        unit_config=UnitConfig(checkpoint_interval=20),
    )
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=6,
        schema=[("cardId", "string"), ("amount", "float")],
    )
    metric = cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments "
        "GROUP BY cardId OVER sliding 10 minutes"
    )

    second = 1000
    print("phase 1: baseline traffic over 3 nodes")
    for index in range(60):
        reply = cluster.send(
            "payments",
            {"cardId": f"card-{index % 5}", "amount": 10.0},
            timestamp=index * second,
        )
    print(f"  card-0 sum before failure: {reply.value(metric, 'sum(amount)')}")

    victim = cluster.assignment_snapshot()["payments.cardId-0"]["active"][0]
    victim_node = victim.split("/")[0]
    print(f"\nphase 2: killing {victim_node} (owns payments.cardId-0)")
    cluster.fail_node(victim_node)
    cluster.run_until_quiet()

    print("phase 3: traffic continues — state survived the failure")
    for index in range(60, 80):
        reply = cluster.send(
            "payments",
            {"cardId": f"card-{index % 5}", "amount": 10.0},
            timestamp=index * second,
        )
    print(f"  card-0 sum after failover: {reply.value(metric, 'sum(amount)')}")

    stats = cluster.recovery_stats()
    print("\nrecovery bill:")
    print(f"  replica promotions (zero copy): {stats['promotions']}")
    print(f"  data recoveries:                {stats['recoveries']}")
    print(f"  bytes transferred:              {stats['bytes_transferred']}")

    print(f"\nphase 4: reviving {victim_node} — stale data makes rejoin cheap")
    cluster.revive_node(victim_node)
    cluster.run_until_quiet()
    stats = cluster.recovery_stats()
    print(f"  delta recoveries after revival: {stats['delta_recoveries']}")
    for task, owners in sorted(cluster.assignment_snapshot().items()):
        print(f"  {task:24s} active={owners['active'][0]} replicas={owners['replicas']}")


def sharded_frontend_failover() -> None:
    """Part 2: crash a frontend process *and* a worker process mid-stream."""
    second = 1000
    card_count = 5
    with create_cluster("process", workers=2, frontends=2) as cluster:
        cluster.create_stream(
            "payments",
            partitioners=["cardId"],
            partitions=6,
            schema=[("cardId", "string"), ("amount", "float")],
        )
        metric = cluster.create_metric(
            "SELECT sum(amount), count(*) FROM payments "
            "GROUP BY cardId OVER sliding 10 minutes"
        )

        def send_phase(start: int, count: int) -> list:
            return cluster.send_batch(
                "payments",
                [
                    {"cardId": f"card-{index % card_count}", "amount": 10.0}
                    for index in range(start, start + count)
                ],
            )

        print("\nphase 5: sharded frontends — traffic over 2 frontend processes")
        replies = send_phase(0, 60)
        stats = cluster.stats()
        per_frontend = {
            frontend_id: fe["events_routed"]
            for frontend_id, fe in stats["frontends"].items()
        }
        print(f"  events per frontend: {per_frontend}")
        assert sum(per_frontend.values()) == 60

        victim_frontend = cluster.frontend_ids()[0]
        victim_worker = cluster.worker_ids()[0]
        print(f"\nphase 6: killing {victim_frontend} AND {victim_worker} mid-stream")
        cluster.kill_frontend(victim_frontend)
        cluster.kill_worker(victim_worker)
        replies += send_phase(60, 40)

        # Recovered reply counts: every event answered exactly once, and
        # the per-card counters carried straight through both crashes.
        assert len(replies) == 100
        per_card = {}
        for reply in replies:
            card = reply.event.get("cardId")
            per_card[card] = per_card.get(card, 0) + 1
            assert reply.value(metric, "count(*)") == per_card[card]
        stats = cluster.stats()
        merged = sum(fe["replies_merged"] for fe in stats["frontends"].values())
        assert merged == len(replies), (merged, len(replies))
        print(f"  replies recovered: {merged}/100, "
              f"frontend restarts: {stats['frontends'][victim_frontend]['restarts']}, "
              f"worker restarts: {cluster.supervisor.restarts}")
        final = replies[-1]
        print(f"  {final.event.get('cardId')} count after both crashes: "
              f"{final.value(metric, 'count(*)')} "
              f"(sum {final.value(metric, 'sum(amount)')})")


if __name__ == "__main__":
    main()
    sharded_frontend_failover()
