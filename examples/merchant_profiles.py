"""Example 1 from the paper: card and merchant profiles (Q1 + Q2).

Two metrics with different group-bys over the same stream:

    Q1: SELECT sum(amount), count(*) FROM payments
        GROUP BY cardId [RANGE 5 MINUTES]
    Q2: SELECT avg(amount) FROM payments
        GROUP BY merchantId [RANGE 5 MINUTES]

The stream gets one topic per partitioner (card and merchant); the
front-end fans each event out to both (Figure 3 step 2), and the reply
collates both profiles. This example runs the synthetic fraud workload
(103 fields, Zipf entities) through a 2-node cluster.

Run with::

    python examples/merchant_profiles.py
"""

from repro.engine import RailgunCluster
from repro.events.generators import FraudWorkload


def main() -> None:
    workload = FraudWorkload(
        cards=500, merchants=40, events_per_second=100.0, seed=11
    )
    cluster = RailgunCluster(nodes=2, processor_units=2, brokers=2)
    cluster.create_stream(
        "payments",
        partitioners=["cardId", "merchantId"],
        partitions=4,
        schema=workload.schema,
    )
    q1 = cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments "
        "GROUP BY cardId OVER sliding 5 minutes"
    )
    q2 = cluster.create_metric(
        "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 minutes"
    )

    print("feeding 300 synthetic payment events (103 fields each)...\n")
    last_reply = None
    for event in workload.take(300):
        last_reply = cluster.send("payments", event=event)

    event = last_reply.event
    print("last event:", event.event_id)
    print(f"  card     {event['cardId']}:")
    print(f"    5-min spend: {last_reply.value(q1, 'sum(amount)'):.2f}")
    print(f"    5-min count: {last_reply.value(q1, 'count(*)')}")
    print(f"  merchant {event['merchantId']}:")
    avg = last_reply.value(q2, "avg(amount)")
    print(f"    5-min avg ticket: {avg:.2f}" if avg is not None else "    (no data)")

    print("\ntask assignment across the cluster (topic card + topic merchant):")
    for task, owners in cluster.assignment_snapshot().items():
        print(f"  {task:28s} active={owners['active'][0]} replicas={owners['replicas']}")


if __name__ == "__main__":
    main()
