"""Ablation bench: reservoir chunk size / codec / prefetch."""

from conftest import assert_checks, write_report

from repro.bench.experiments import abl_reservoir


def test_ablation_reservoir(benchmark):
    result = benchmark.pedantic(
        abl_reservoir.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = abl_reservoir.render(result)
    write_report("ablation_reservoir", report)
    print("\n" + report)
    assert_checks(result)
