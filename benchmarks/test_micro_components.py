"""Micro-benchmarks of the hot-path components.

These are the costs the simulation's service models abstract; measuring
them keeps the cost model honest and catches performance regressions in
the real implementations.
"""

import random

from repro.aggregates import MaxAggregator, StdDevAggregator, SumAggregator
from repro.baselines.hopping import HoppingWindowEngine
from repro.common.clock import MINUTES
from repro.common.percentiles import LatencyRecorder
from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.lsm.db import LsmDb
from repro.plan.dag import TaskPlan
from repro.query.expressions import parse_expression
from repro.query.parser import parse_query
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig
from repro.state.store import MetricStateStore


def _schema_registry():
    registry = SchemaRegistry()
    registry.register(
        Schema(
            [
                SchemaField("cardId", FieldType.STRING),
                SchemaField("amount", FieldType.FLOAT),
            ]
        )
    )
    return registry


def test_reservoir_append_throughput(benchmark):
    reservoir = EventReservoir(_schema_registry(), config=ReservoirConfig(chunk_max_events=256))
    events = iter(
        Event(f"e{i}", i * 10, {"cardId": f"c{i % 100}", "amount": 1.0})
        for i in range(2_000_000)
    )
    benchmark(lambda: reservoir.append(next(events)))


def test_plan_process_event(benchmark):
    reservoir = EventReservoir(_schema_registry(), config=ReservoirConfig(chunk_max_events=256))
    plan = TaskPlan(reservoir, MetricStateStore())
    plan.add_metric(
        parse_query("SELECT sum(amount), count(*) FROM s GROUP BY cardId OVER sliding 5 minutes")
    )
    counter = iter(range(2_000_000))

    def one_event():
        i = next(counter)
        event = Event(f"p{i}", i * 10, {"cardId": f"c{i % 50}", "amount": 2.0})
        result = reservoir.append(event)
        return plan.process_event(result.event)

    benchmark(one_event)


def test_lsm_put_get(benchmark):
    db = LsmDb()
    rng = random.Random(1)
    counter = iter(range(5_000_000))

    def one_op():
        i = next(counter)
        key = f"k{rng.randrange(5000):06d}".encode()
        if i % 2:
            db.put(key, b"value")
        else:
            db.get(key)

    benchmark(one_op)


def test_reservoir_append_batch_throughput(benchmark):
    reservoir = EventReservoir(
        _schema_registry(), config=ReservoirConfig(chunk_max_events=256)
    )
    counter = iter(range(0, 2_000_000_000, 512))

    def one_batch():
        base = next(counter)
        reservoir.append_batch(
            [
                Event(f"b{base + i}", base + i + 1,
                      {"cardId": f"c{i % 100}", "amount": 1.0})
                for i in range(512)
            ]
        )

    benchmark(one_batch)


def test_aggregator_updates(benchmark):
    aggs = [SumAggregator(), MaxAggregator(), StdDevAggregator()]
    counter = iter(range(10_000_000))

    def one_update():
        i = next(counter)
        event = Event(f"a{i}", i, {})
        for agg in aggs:
            agg.add(float(i % 1000), event)

    benchmark(one_update)


def test_aggregator_update_batch(benchmark):
    aggs = [SumAggregator(), MaxAggregator(), StdDevAggregator()]
    counter = iter(range(0, 2_000_000_000, 256))

    def one_batch():
        base = next(counter)
        pairs = [
            (float((base + i) % 1000), Event(f"ab{base + i}", base + i, {}))
            for i in range(256)
        ]
        for agg in aggs:
            agg.update_batch(pairs, ())

    benchmark(one_batch)


def test_hopping_engine_event(benchmark):
    engine = HoppingWindowEngine(60 * MINUTES, 1 * MINUTES)
    counter = iter(range(10_000_000))

    def one_event():
        i = next(counter)
        engine.on_event(f"c{i % 100}", i * 100, 1.0)

    benchmark(one_event)


def test_expression_evaluation(benchmark):
    expr = parse_expression("amount > 10 && (channel == 'ecom' || amount * 2 > 50)")
    event = Event("x", 0, {"amount": 30.0, "channel": "pos"})
    benchmark(lambda: expr.matches(event))


def test_latency_recorder(benchmark):
    recorder = LatencyRecorder()
    rng = random.Random(2)
    benchmark(lambda: recorder.record(rng.lognormvariate(1.0, 0.5)))


def test_query_parse(benchmark):
    text = (
        "SELECT sum(amount), avg(amount), countDistinct(city) FROM payments "
        "WHERE amount > 0 GROUP BY cardId OVER sliding 30 minutes delayed by 5 seconds"
    )
    benchmark(lambda: parse_query(text))
