"""Figure 8 bench: Flink hopping windows vs Railgun sliding windows."""

from conftest import assert_checks, write_report

from repro.bench.experiments import fig8_flink_vs_railgun


def test_fig8_flink_vs_railgun(benchmark):
    result = benchmark.pedantic(
        fig8_flink_vs_railgun.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = fig8_flink_vs_railgun.render(result)
    write_report("fig8_flink_vs_railgun", report)
    print("\n" + report)
    assert_checks(result)
