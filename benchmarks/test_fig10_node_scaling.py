"""Figure 10 bench: near-linear scaling to 1M ev/s on 50 nodes."""

from conftest import assert_checks, write_report

from repro.bench.experiments import fig10_node_scaling


def test_fig10_node_scaling(benchmark):
    result = benchmark.pedantic(
        fig10_node_scaling.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = fig10_node_scaling.render(result)
    write_report("fig10_node_scaling", report)
    print("\n" + report)
    assert_checks(result)
