"""Figure 1 bench: burst detection, sliding vs hopping."""

from conftest import assert_checks, write_report

from repro.bench.experiments import fig1_accuracy


def test_fig1_accuracy(benchmark):
    result = benchmark.pedantic(
        fig1_accuracy.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = fig1_accuracy.render(result)
    write_report("fig1_accuracy", report)
    print("\n" + report)
    assert_checks(result)
