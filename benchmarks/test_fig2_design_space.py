"""Figure 2 bench: accuracy-vs-scale quadrants, measured."""

from conftest import assert_checks, write_report

from repro.bench.experiments import fig2_design_space


def test_fig2_design_space(benchmark):
    result = benchmark.pedantic(
        fig2_design_space.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = fig2_design_space.render(result)
    write_report("fig2_design_space", report)
    print("\n" + report)
    assert_checks(result)
