"""Ablation bench: LSM state store behaviour."""

from conftest import assert_checks, write_report

from repro.bench.experiments import abl_lsm


def test_ablation_lsm(benchmark):
    result = benchmark.pedantic(
        abl_lsm.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = abl_lsm.render(result)
    write_report("ablation_lsm", report)
    print("\n" + report)
    assert_checks(result)
