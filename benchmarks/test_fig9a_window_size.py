"""Figure 9a bench: latency independence from window size."""

from conftest import assert_checks, write_report

from repro.bench.experiments import fig9a_window_size


def test_fig9a_window_size(benchmark):
    result = benchmark.pedantic(
        fig9a_window_size.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = fig9a_window_size.render(result)
    write_report("fig9a_window_size", report)
    print("\n" + report)
    assert_checks(result)
