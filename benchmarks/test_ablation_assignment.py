"""Ablation bench: Figure 7 sticky assignment vs round-robin."""

from conftest import assert_checks, write_report

from repro.bench.experiments import abl_assignment


def test_ablation_assignment(benchmark):
    result = benchmark.pedantic(
        abl_assignment.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = abl_assignment.render(result)
    write_report("ablation_assignment", report)
    print("\n" + report)
    assert_checks(result)
