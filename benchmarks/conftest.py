"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import os

REPORTS_DIR = os.path.join(os.path.dirname(__file__), "..", "reports")


def write_report(name: str, text: str) -> None:
    """Persist a rendered experiment report under ``reports/``."""
    os.makedirs(REPORTS_DIR, exist_ok=True)
    path = os.path.join(REPORTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def assert_checks(result: dict) -> None:
    """Fail the bench if any paper-shape expectation failed."""
    failed = [desc for desc, ok in result["checks"] if not ok]
    assert not failed, f"paper-shape checks failed: {failed}"
