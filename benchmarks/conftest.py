"""Shared helpers for the benchmark suite."""

from __future__ import annotations

import os

#: default report location; override with $RAILGUN_REPORTS_DIR (CI
#: redirects artifacts into the job workspace)
DEFAULT_REPORTS_DIR = os.path.join(os.path.dirname(__file__), "..", "reports")


def reports_dir() -> str:
    """Where rendered reports go; resolved per call so env changes apply."""
    return os.environ.get("RAILGUN_REPORTS_DIR") or DEFAULT_REPORTS_DIR


def write_report(name: str, text: str) -> None:
    """Persist a rendered experiment report under the reports directory."""
    directory = reports_dir()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def assert_checks(result: dict) -> None:
    """Fail the bench if any paper-shape expectation failed."""
    failed = [desc for desc, ok in result["checks"] if not ok]
    assert not failed, f"paper-shape checks failed: {failed}"
