"""Figure 9b bench: latency vs iterator count (cache pressure + GC)."""

from conftest import assert_checks, write_report

from repro.bench.experiments import fig9b_iterators


def test_fig9b_iterators(benchmark):
    result = benchmark.pedantic(
        fig9b_iterators.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    report = fig9b_iterators.render(result)
    write_report("fig9b_iterators", report)
    print("\n" + report)
    assert_checks(result)
